module Q = Memrel_prob.Rational
module Op = Memrel_memmodel.Op
module Model = Memrel_memmodel.Model

module type S = sig
  type q

  type matrix = {
    st_st : q;
    st_ld : q;
    ld_st : q;
    ld_ld : q;
  }

  val sc : matrix
  val tso : ?s:q -> unit -> matrix
  val pso : ?s:q -> unit -> matrix
  val wo : ?s:q -> unit -> matrix
  val of_model : Model.t -> matrix
  val max_m : int
  val gamma_pmf : ?p:q -> matrix -> m:int -> (int * q) list
  val bottom_st_probability : ?p:q -> matrix -> m:int -> q
end

module Make (Q : Memrel_prob.Sigs.RATIONAL) = struct
  type q = Q.t

  type matrix = {
    st_st : q;
    st_ld : q;
    ld_st : q;
    ld_ld : q;
  }

  let check_entry name v =
    if Q.compare v Q.zero < 0 || Q.compare v Q.one > 0 then
      invalid_arg (Printf.sprintf "Exact_dp_q: %s out of [0,1]" name)

  let make ~st_st ~st_ld ~ld_st ~ld_ld =
    check_entry "st_st" st_st;
    check_entry "st_ld" st_ld;
    check_entry "ld_st" ld_st;
    check_entry "ld_ld" ld_ld;
    { st_st; st_ld; ld_st; ld_ld }

  let sc = { st_st = Q.zero; st_ld = Q.zero; ld_st = Q.zero; ld_ld = Q.zero }
  let tso ?(s = Q.half) () = make ~st_st:Q.zero ~st_ld:s ~ld_st:Q.zero ~ld_ld:Q.zero
  let pso ?(s = Q.half) () = make ~st_st:s ~st_ld:s ~ld_st:Q.zero ~ld_ld:Q.zero
  let wo ?(s = Q.half) () = make ~st_st:s ~st_ld:s ~ld_st:s ~ld_ld:s

  let of_model model =
    let q earlier later = Q.of_float_dyadic (Model.swap_probability model ~earlier ~later) in
    make ~st_st:(q Op.ST Op.ST) ~st_ld:(q Op.ST Op.LD) ~ld_st:(q Op.LD Op.ST)
      ~ld_ld:(q Op.LD Op.LD)

  let rho matrix earlier later =
    match (earlier, later) with
    | 1, 1 -> matrix.st_st
    | 1, 0 -> matrix.st_ld
    | 0, 1 -> matrix.ld_st
    | 0, 0 -> matrix.ld_ld
    | _ -> assert false

  let max_m = 12

  let check ?(p = Q.half) m =
    check_entry "p" p;
    if m < 0 || m > max_m then invalid_arg "Exact_dp_q: m out of [0, max_m]"

  (* identical structure to Exact_dp, over rationals; bits: ST = 1, LD = 0,
     bit j = position j (0 = top) *)
  let prefix_distribution ~p matrix m =
    let dist = ref [| Q.one |] in
    for len = 0 to m - 1 do
      let cur = !dist in
      let next = Array.make (1 lsl (len + 1)) Q.zero in
      let insert mask k tb =
        let low = mask land ((1 lsl k) - 1) in
        let high = (mask lsr k) lsl (k + 1) in
        low lor (tb lsl k) lor high
      in
      Array.iteri
        (fun mask mass ->
          if not (Q.is_zero mass) then
            List.iter
              (fun (tb, tp) ->
                if not (Q.is_zero tp) then begin
                  let mass = Q.mul mass tp in
                  let pass = ref Q.one in
                  for k = len downto 0 do
                    let stop_prob =
                      if k = 0 then !pass
                      else begin
                        let above = (mask lsr (k - 1)) land 1 in
                        let r = rho matrix above tb in
                        let sp = Q.mul !pass (Q.sub Q.one r) in
                        pass := Q.mul !pass r;
                        sp
                      end
                    in
                    if not (Q.is_zero stop_prob) then begin
                      let nm = insert mask k tb in
                      next.(nm) <- Q.add next.(nm) (Q.mul mass stop_prob)
                    end
                  done
                end)
              [ (1, p); (0, Q.sub Q.one p) ])
        cur;
      dist := next
    done;
    !dist

  let gamma_pmf ?(p = Q.half) matrix ~m =
    check ~p m;
    let prefix = prefix_distribution ~p matrix m in
    let out = Array.make (m + 1) Q.zero in
    Array.iteri
      (fun mask mass ->
        if not (Q.is_zero mass) then begin
          let pass = ref Q.one in
          for j = 0 to m do
            let stop_prob =
              if j = m then !pass
              else begin
                let above = (mask lsr (m - 1 - j)) land 1 in
                let r = rho matrix above 0 (* the critical LD *) in
                let sp = Q.mul !pass (Q.sub Q.one r) in
                pass := Q.mul !pass r;
                sp
              end
            in
            if not (Q.is_zero stop_prob) then begin
              let pass_st = ref Q.one in
              for t = 0 to j do
                let stop_st =
                  if t = j then !pass_st
                  else begin
                    let above = (mask lsr (m - 1 - t)) land 1 in
                    let r = rho matrix above 1 (* the critical ST *) in
                    let sp = Q.mul !pass_st (Q.sub Q.one r) in
                    pass_st := Q.mul !pass_st r;
                    sp
                  end
                in
                if not (Q.is_zero stop_st) then begin
                  let gamma = j - t in
                  out.(gamma) <- Q.add out.(gamma) (Q.mul mass (Q.mul stop_prob stop_st))
                end
              done
            end
          done
        end)
      prefix;
    List.init (m + 1) (fun g -> (g, out.(g)))

  let bottom_st_probability ?(p = Q.half) matrix ~m =
    check ~p m;
    if m = 0 then invalid_arg "Exact_dp_q.bottom_st_probability: m >= 1 required";
    let prefix = prefix_distribution ~p matrix m in
    let acc = ref Q.zero in
    Array.iteri
      (fun mask mass -> if (mask lsr (m - 1)) land 1 = 1 then acc := Q.add !acc mass)
      prefix;
    !acc
end

include Make (Memrel_prob.Rational)
