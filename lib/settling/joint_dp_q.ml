module Q = Memrel_prob.Rational
module Model = Memrel_memmodel.Model

let max_replicas = 4

module type S = sig
  type q

  val expect_product :
    ?p:q -> ?b_max:int -> s:q -> Model.family -> m:int -> n:int -> q

  val bottom_run_pmf :
    ?p:q -> ?b_max:int -> s:q -> Model.family -> m:int -> q array
end

module Make (Q : Memrel_prob.Sigs.RATIONAL) = struct
  type q = Q.t

  let in_open_unit v = Q.compare v Q.zero > 0 && Q.compare v Q.one < 0

  let check_common ~p ~s ~m =
    if not (in_open_unit p) then invalid_arg "Joint_dp_q: p must be in (0,1)";
    if not (in_open_unit s) then invalid_arg "Joint_dp_q: s must be in (0,1)";
    if m < 1 then invalid_arg "Joint_dp_q: m >= 1 required"

  (* Rational port of Joint_dp.run_chains: the coupled bottom-run chains,
     one tensor coordinate per replica, all driven by the same program
     draw. Same truncation semantics as the float version (coordinates
     clamp at b_max). *)
  let run_chains ~p ~s ~b_max ~m k =
    let side = b_max + 1 in
    let size =
      let rec pow acc i = if i = 0 then acc else pow (acc * side) (i - 1) in
      pow 1 k
    in
    let stride j =
      let rec pow acc i = if i = 0 then acc else pow (acc * side) (i - 1) in
      pow 1 j
    in
    let spow = Array.init side (fun b -> Q.pow s b) in
    let one_minus_s = Q.sub Q.one s in
    let one_minus_p = Q.sub Q.one p in
    let dist = Array.make size Q.zero in
    dist.(0) <- Q.one;
    let tmp = Array.make size Q.zero in
    (* fresh ST: every replica's run grows by one (clamped) *)
    let shift_all src dst =
      Array.fill dst 0 size Q.zero;
      let coords = Array.make k 0 in
      for idx = 0 to size - 1 do
        let rem = ref idx in
        for j = 0 to k - 1 do
          coords.(j) <- !rem mod side;
          rem := !rem / side
        done;
        let v = src.(idx) in
        if not (Q.is_zero v) then begin
          let nidx = ref 0 in
          for j = k - 1 downto 0 do
            let b = if coords.(j) >= b_max then b_max else coords.(j) + 1 in
            nidx := (!nidx * side) + b
          done;
          dst.(!nidx) <- Q.add dst.(!nidx) v
        end
      done
    in
    (* fresh LD on one axis: new[b'] = s^b' ((1-s) * sum_{b > b'} old[b] + old[b']) *)
    let ld_axis arr j =
      let st = stride j in
      let block = st * side in
      let line = Array.make side Q.zero in
      let i = ref 0 in
      while !i < size do
        for off = !i to !i + st - 1 do
          for b = 0 to side - 1 do
            line.(b) <- arr.(off + (b * st))
          done;
          let suffix = ref Q.zero in
          for b = side - 1 downto 0 do
            let above = !suffix in
            suffix := Q.add !suffix line.(b);
            let nb = Q.mul spow.(b) (Q.add (Q.mul one_minus_s above) line.(b)) in
            arr.(off + (b * st)) <- nb
          done
        done;
        i := !i + block
      done
    in
    for _ = 1 to m do
      shift_all dist tmp;
      for j = 0 to k - 1 do
        ld_axis dist j
      done;
      for idx = 0 to size - 1 do
        dist.(idx) <- Q.add (Q.mul one_minus_p dist.(idx)) (Q.mul p tmp.(idx))
      done
    done;
    dist

  (* window-transform weight given a bottom run of mu STs, for exponent i *)
  let weight_tso ~s ~i mu =
    let one_minus_s = Q.sub Q.one s in
    let acc = ref Q.zero in
    for g = 0 to mu do
      let pr = if g < mu then Q.mul (Q.pow s g) one_minus_s else Q.pow s mu in
      acc := Q.add !acc (Q.mul pr (Q.pow2 (-i * (g + 2))))
    done;
    !acc

  let weight_pso ~s ~i mu =
    let one_minus_s = Q.sub Q.one s in
    let acc = ref Q.zero in
    for g = 0 to mu do
      let pr_g = if g < mu then Q.mul (Q.pow s g) one_minus_s else Q.pow s mu in
      for t = 0 to g do
        let pr_t = if t < g then Q.mul (Q.pow s t) one_minus_s else Q.pow s g in
        acc := Q.add !acc (Q.mul (Q.mul pr_g pr_t) (Q.pow2 (-i * (g - t + 2))))
      done
    done;
    !acc

  let default_b_max b_max m = match b_max with Some b -> b | None -> Stdlib.min m 40

  let expect_product ?p ?b_max ~s family ~m ~n =
    let p = match p with Some p -> p | None -> Q.half in
    check_common ~p ~s ~m;
    if n < 2 || n - 1 > max_replicas then
      invalid_arg "Joint_dp_q.expect_product: n must be in [2, max_replicas + 1]";
    let k = n - 1 in
    match family with
    | Model.Sequential_consistency ->
      (* Gamma = 2 for every thread *)
      Q.pow2 (-2 * (k * (k + 1) / 2))
    | Model.Total_store_order | Model.Partial_store_order ->
      let b_max = default_b_max b_max m in
      if b_max < 1 then invalid_arg "Joint_dp_q: b_max >= 1 required";
      let weight =
        match family with Model.Partial_store_order -> weight_pso | _ -> weight_tso
      in
      let side = b_max + 1 in
      let dist = run_chains ~p ~s ~b_max ~m k in
      let w = Array.init k (fun j -> Array.init side (fun mu -> weight ~s ~i:(j + 1) mu)) in
      let total = ref Q.zero in
      Array.iteri
        (fun idx v ->
          if not (Q.is_zero v) then begin
            let rem = ref idx and prod = ref v in
            for j = 0 to k - 1 do
              prod := Q.mul !prod w.(j).(!rem mod side);
              rem := !rem / side
            done;
            total := Q.add !total !prod
          end)
        dist;
      !total
    | Model.Weak_ordering | Model.Custom ->
      (* WO needs an infinite series (its closed form lives in the float
         Joint_dp); Custom has no bottom-run reduction at all *)
      invalid_arg "Joint_dp_q: only SC/TSO/PSO families are supported"

  let bottom_run_pmf ?p ?b_max ~s family ~m =
    let p = match p with Some p -> p | None -> Q.half in
    check_common ~p ~s ~m;
    (match family with
     | Model.Total_store_order | Model.Partial_store_order -> ()
     | _ -> invalid_arg "Joint_dp_q.bottom_run_pmf: TSO/PSO dynamics only");
    let b_max = default_b_max b_max m in
    run_chains ~p ~s ~b_max ~m 1
end

include Make (Memrel_prob.Rational)

let expect_product_model ?(p = 0.5) ?b_max model ~m ~n =
  expect_product ~p:(Q.of_float_dyadic p) ?b_max
    ~s:(Q.of_float_dyadic (Model.s model)) (Model.family model) ~m ~n
