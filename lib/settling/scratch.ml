module Model = Memrel_memmodel.Model
module Op = Memrel_memmodel.Op
module Rng = Memrel_prob.Rng

(* Op codes for generated programs (no fences): bit 0 is the access kind,
   bit 1 marks the critical pair. The settle loop then reads every swap
   probability out of a 16-entry threshold table indexed by
   [earlier_code * 4 + later_code] — one unsafe load per step instead of a
   match on the op variants, and the probability is already in
   {!Rng.scale_probability} form so no float is boxed per draw. *)
let code_plain_ld = 0
let code_plain_st = 1
let code_crit_ld = 2
let code_crit_st = 3

let kind_of_code c = if c land 1 = 1 then Op.ST else Op.LD

type t = {
  m : int;
  gap : int;
  n : int;  (* m + gap + 2 *)
  p_threshold : int;  (* ST probability of a plain op, pre-scaled *)
  thresholds : int array;  (* swap thresholds, earlier_code * 4 + later_code *)
  codes : int array;  (* the current program, length n *)
  order : int array;  (* order.(pos) = initial index of the op at pos *)
  mutable load_pos : int;  (* settled position of the critical load *)
  mutable store_pos : int;  (* settled position of the critical store *)
}

let create ?(p = 0.5) ?(gap = 0) ~m model =
  if m < 0 then invalid_arg "Scratch.create: m < 0";
  if gap < 0 then invalid_arg "Scratch.create: gap < 0";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Scratch.create: p out of [0,1]";
  let n = m + gap + 2 in
  let thresholds = Array.make 16 0 in
  for e = 0 to 3 do
    for l = 0 to 3 do
      let prob =
        (* the critical pair is the only same-location pair: it never swaps *)
        if (e = code_crit_ld && l = code_crit_st) || (e = code_crit_st && l = code_crit_ld)
        then 0.0
        else
          Model.swap_probability model ~earlier:(kind_of_code e) ~later:(kind_of_code l)
      in
      thresholds.((e * 4) + l) <- Rng.scale_probability prob
    done
  done;
  {
    m;
    gap;
    n;
    p_threshold = Rng.scale_probability p;
    thresholds;
    codes = Array.make n 0;
    order = Array.make n 0;
    load_pos = 0;
    store_pos = 0;
  }

let generate t rng =
  (* same draw order as [Program.generate_with_gap]: one Bernoulli per plain
     position, ascending; ST on true *)
  let codes = t.codes in
  for i = 0 to t.m - 1 do
    Array.unsafe_set codes i
      (if Rng.bernoulli_scaled rng t.p_threshold then code_plain_st else code_plain_ld)
  done;
  codes.(t.m) <- code_crit_ld;
  for i = t.m + 1 to t.m + t.gap do
    Array.unsafe_set codes i
      (if Rng.bernoulli_scaled rng t.p_threshold then code_plain_st else code_plain_ld)
  done;
  codes.(t.m + t.gap + 1) <- code_crit_st

let settle t rng =
  (* [Settle.run] on the coded program: identical walk, identical draw
     sequence (a Bernoulli is drawn exactly when the swap probability is
     positive, i.e. the threshold is) *)
  let codes = t.codes and order = t.order and th = t.thresholds in
  let n = t.n in
  for i = 0 to n - 1 do
    Array.unsafe_set order i i
  done;
  for r = 1 to n - 1 do
    let settling = Array.unsafe_get codes r in
    let pos = ref r in
    let continue = ref true in
    while !continue && !pos > 0 do
      let above = Array.unsafe_get codes (Array.unsafe_get order (!pos - 1)) in
      let threshold = Array.unsafe_get th ((above * 4) + settling) in
      if threshold > 0 && Rng.bernoulli_scaled rng threshold then begin
        Array.unsafe_set order !pos (Array.unsafe_get order (!pos - 1));
        Array.unsafe_set order (!pos - 1) r;
        decr pos
      end
      else continue := false
    done
  done;
  (* locate the critical pair by initial index — one linear scan instead of
     materializing the inverse permutation *)
  let cl = t.m and cs = t.m + t.gap + 1 in
  for pos = 0 to n - 1 do
    let init = Array.unsafe_get order pos in
    if init = cl then t.load_pos <- pos else if init = cs then t.store_pos <- pos
  done

let load_pos t = t.load_pos
let store_pos t = t.store_pos
let gamma t = t.store_pos - t.load_pos - 1

let sample_gamma t rng =
  generate t rng;
  settle t rng;
  gamma t
