module Stats = Memrel_prob.Stats
module Par = Memrel_prob.Par

type estimate = {
  gamma_pmf : (int * float) list;
  trials : int;
  mean_gamma : float;
  histogram : Stats.histogram;
}

let default_m = 64

let sample_gamma_program model rng prog =
  let pi = Settle.run model rng prog in
  Window.gamma prog pi

let sample_gamma ?(p = 0.5) ?(m = default_m) model rng =
  let prog = Program.generate ~p rng ~m in
  sample_gamma_program model rng prog

let estimate ?(p = 0.5) ?(m = default_m) ?jobs ~trials model rng =
  if trials <= 0 then invalid_arg "Mc.estimate: trials must be positive";
  (* accumulator: per-chunk gamma counts plus the running gamma sum; counts
     merge by addition, so the merged histogram is independent of chunk
     execution order (and Stats sorts the bins) *)
  let init () = (Hashtbl.create 32, ref 0) in
  let accumulate ((counts, sum) as acc) r =
    let g = sample_gamma ~p ~m model r in
    sum := !sum + g;
    Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g));
    acc
  in
  let merge ((c1, s1) as acc) (c2, s2) =
    Hashtbl.iter
      (fun g c -> Hashtbl.replace c1 g (c + Option.value ~default:0 (Hashtbl.find_opt c1 g)))
      c2;
    s1 := !s1 + !s2;
    acc
  in
  let counts, sum = Par.run ?jobs ~trials ~init ~accumulate ~merge rng in
  let histogram = Stats.histogram_of_counts counts in
  {
    gamma_pmf = Stats.empirical_pmf histogram;
    trials;
    mean_gamma = float_of_int !sum /. float_of_int trials;
    histogram;
  }

let probability_b ?(p = 0.5) ?(m = default_m) ?jobs ~trials ~gamma model rng =
  if trials <= 0 then invalid_arg "Mc.probability_b: trials must be positive";
  let successes = Par.count ?jobs ~trials (fun r -> sample_gamma ~p ~m model r = gamma) rng in
  (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
