module Stats = Memrel_prob.Stats
module Par = Memrel_prob.Par

type estimate = {
  gamma_pmf : (int * float) list;
  trials : int;
  mean_gamma : float;
  histogram : Stats.histogram;
}

let default_m = 64

let sample_gamma_program model rng prog =
  let pi = Settle.run model rng prog in
  Window.gamma prog pi

let sample_gamma ?(p = 0.5) ?(m = default_m) model rng =
  let prog = Program.generate ~p rng ~m in
  sample_gamma_program model rng prog

(* per-chunk accumulator of the streaming path: a dense count array (gamma
   ranges over 0..m for gap-free programs) plus the running gamma sum;
   counts merge by addition so the merged histogram is independent of chunk
   execution order *)
type gamma_acc = { counts : int array; mutable sum : int }

let gamma_acc_init ~m () = { counts = Array.make (m + 1) 0; sum = 0 }

let gamma_acc_merge a b =
  Array.iteri (fun g c -> a.counts.(g) <- a.counts.(g) + c) b.counts;
  a.sum <- a.sum + b.sum;
  a

let empty_estimate =
  { gamma_pmf = []; trials = 0; mean_gamma = Float.nan; histogram = { Stats.bins = []; total = 0 } }

let estimate_of_acc ~trials acc =
  if trials = 0 then
    (* nothing completed before the budget tripped: an honestly empty
       estimate rather than 0/0 *)
    empty_estimate
  else begin
    let bins = ref [] in
    for g = Array.length acc.counts - 1 downto 0 do
      if acc.counts.(g) > 0 then bins := (g, acc.counts.(g)) :: !bins
    done;
    let histogram = { Stats.bins = !bins; total = trials } in
    {
      gamma_pmf = Stats.empirical_pmf histogram;
      trials;
      mean_gamma = float_of_int acc.sum /. float_of_int trials;
      histogram;
    }
  end

let estimate ?(p = 0.5) ?(m = default_m) ?jobs ~trials model rng =
  if trials <= 0 then invalid_arg "Mc.estimate: trials must be positive";
  let s =
    Par.run_streaming ?jobs ~max_trials:trials ~init:(gamma_acc_init ~m)
      ~worker:(fun () ->
        let scratch = Scratch.create ~p ~m model in
        fun acc r ->
          let g = Scratch.sample_gamma scratch r in
          acc.counts.(g) <- acc.counts.(g) + 1;
          acc.sum <- acc.sum + g;
          acc)
      ~merge:gamma_acc_merge rng
  in
  estimate_of_acc ~trials s.Par.value

let probability_b_worker ~p ~m ~gamma model () =
  let scratch = Scratch.create ~p ~m model in
  fun r -> Scratch.sample_gamma scratch r = gamma

let bernoulli_of_streamed (s : int Par.streamed) =
  let successes = s.Par.value and trials = s.Par.trials_done in
  (* intervals widen honestly as trials_done shrinks; with nothing done the
     interval is the vacuous [0, 1] *)
  let value =
    if trials = 0 then (Float.nan, { Stats.lo = 0.0; hi = 1.0 })
    else (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
  in
  { s with Par.value }

let probability_b ?(p = 0.5) ?(m = default_m) ?jobs ~trials ~gamma model rng =
  if trials <= 0 then invalid_arg "Mc.probability_b: trials must be positive";
  let s =
    Par.count_streaming ?jobs ~max_trials:trials
      ~worker:(probability_b_worker ~p ~m ~gamma model)
      rng
  in
  (bernoulli_of_streamed s).Par.value

let probability_b_adaptive ?(p = 0.5) ?(m = default_m) ?jobs ?chunk ?budget ?report
    ?report_every ~target_width ~max_trials ~gamma model rng =
  if max_trials <= 0 then invalid_arg "Mc.probability_b_adaptive: max_trials must be positive";
  let s =
    Par.count_streaming ?jobs ?chunk ?budget ~target_width ?report ?report_every ~max_trials
      ~worker:(probability_b_worker ~p ~m ~gamma model)
      rng
  in
  bernoulli_of_streamed s

(* -- closure-based reference path --------------------------------------- *)

(* The pre-streaming per-trial closures ([Program.generate] + [Settle.run]
   allocating fresh structures every trial), kept for differential tests and
   benchmarks: the streaming kernel must reproduce these results
   bit-for-bit. *)
module Reference = struct
  let estimate ?(p = 0.5) ?(m = default_m) ?jobs ~trials model rng =
    if trials <= 0 then invalid_arg "Mc.estimate: trials must be positive";
    let s =
      Par.run ?jobs ~trials ~init:(gamma_acc_init ~m)
        ~accumulate:(fun acc r ->
          let g = sample_gamma ~p ~m model r in
          acc.counts.(g) <- acc.counts.(g) + 1;
          acc.sum <- acc.sum + g;
          acc)
        ~merge:gamma_acc_merge rng
    in
    estimate_of_acc ~trials s

  let probability_b ?(p = 0.5) ?(m = default_m) ?jobs ~trials ~gamma model rng =
    if trials <= 0 then invalid_arg "Mc.probability_b: trials must be positive";
    let successes = Par.count ?jobs ~trials (fun r -> sample_gamma ~p ~m model r = gamma) rng in
    (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
end

(* -- governed paths (checkpoint/retry; not the hot loop) ----------------- *)

let gamma_fold ~p ~m model =
  let init () = (Hashtbl.create 32, ref 0) in
  let accumulate ((counts, sum) as acc) r =
    let g = sample_gamma ~p ~m model r in
    sum := !sum + g;
    Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g));
    acc
  in
  let merge ((c1, s1) as acc) (c2, s2) =
    Hashtbl.iter
      (fun g c -> Hashtbl.replace c1 g (c + Option.value ~default:0 (Hashtbl.find_opt c1 g)))
      c2;
    s1 := !s1 + !s2;
    acc
  in
  (init, accumulate, merge)

let estimate_of ~trials (counts, sum) =
  if trials = 0 then empty_estimate
  else begin
    let histogram = Stats.histogram_of_counts counts in
    {
      gamma_pmf = Stats.empirical_pmf histogram;
      trials;
      mean_gamma = float_of_int !sum /. float_of_int trials;
      histogram;
    }
  end

let estimate_governed ?(p = 0.5) ?(m = default_m) ?jobs ?budget ?checkpoint ?checkpoint_every
    ?resume ?max_retries ?fault ~trials model rng =
  if trials <= 0 then invalid_arg "Mc.estimate: trials must be positive";
  let init, accumulate, merge = gamma_fold ~p ~m model in
  let g =
    Par.run_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
      ~trials ~init ~accumulate ~merge rng
  in
  (* the estimate is over the trials that actually ran; on a complete run
     [trials_done = trials] and this equals {!estimate} bit-for-bit *)
  { g with Par.value = estimate_of ~trials:g.Par.run_stats.Par.trials_done g.Par.value }

let probability_b_governed ?(p = 0.5) ?(m = default_m) ?jobs ?budget ?checkpoint
    ?checkpoint_every ?resume ?max_retries ?fault ~trials ~gamma model rng =
  if trials <= 0 then invalid_arg "Mc.probability_b: trials must be positive";
  let g =
    Par.count_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
      ~trials
      (fun r -> sample_gamma ~p ~m model r = gamma)
      rng
  in
  let successes = g.Par.value and trials = g.Par.run_stats.Par.trials_done in
  let value =
    if trials = 0 then (Float.nan, { Stats.lo = 0.0; hi = 1.0 })
    else (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
  in
  { g with Par.value }
