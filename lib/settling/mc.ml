module Stats = Memrel_prob.Stats
module Par = Memrel_prob.Par

type estimate = {
  gamma_pmf : (int * float) list;
  trials : int;
  mean_gamma : float;
  histogram : Stats.histogram;
}

let default_m = 64

let sample_gamma_program model rng prog =
  let pi = Settle.run model rng prog in
  Window.gamma prog pi

let sample_gamma ?(p = 0.5) ?(m = default_m) model rng =
  let prog = Program.generate ~p rng ~m in
  sample_gamma_program model rng prog

(* accumulator: per-chunk gamma counts plus the running gamma sum; counts
   merge by addition, so the merged histogram is independent of chunk
   execution order (and Stats sorts the bins) *)
let gamma_fold ~p ~m model =
  let init () = (Hashtbl.create 32, ref 0) in
  let accumulate ((counts, sum) as acc) r =
    let g = sample_gamma ~p ~m model r in
    sum := !sum + g;
    Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g));
    acc
  in
  let merge ((c1, s1) as acc) (c2, s2) =
    Hashtbl.iter
      (fun g c -> Hashtbl.replace c1 g (c + Option.value ~default:0 (Hashtbl.find_opt c1 g)))
      c2;
    s1 := !s1 + !s2;
    acc
  in
  (init, accumulate, merge)

let estimate_of ~trials (counts, sum) =
  if trials = 0 then
    (* nothing completed before the budget tripped: an honestly empty
       estimate rather than 0/0 *)
    { gamma_pmf = []; trials = 0; mean_gamma = Float.nan; histogram = { Stats.bins = []; total = 0 } }
  else begin
    let histogram = Stats.histogram_of_counts counts in
    {
      gamma_pmf = Stats.empirical_pmf histogram;
      trials;
      mean_gamma = float_of_int !sum /. float_of_int trials;
      histogram;
    }
  end

let estimate ?(p = 0.5) ?(m = default_m) ?jobs ~trials model rng =
  if trials <= 0 then invalid_arg "Mc.estimate: trials must be positive";
  let init, accumulate, merge = gamma_fold ~p ~m model in
  estimate_of ~trials (Par.run ?jobs ~trials ~init ~accumulate ~merge rng)

let estimate_governed ?(p = 0.5) ?(m = default_m) ?jobs ?budget ?checkpoint ?checkpoint_every
    ?resume ?max_retries ?fault ~trials model rng =
  if trials <= 0 then invalid_arg "Mc.estimate: trials must be positive";
  let init, accumulate, merge = gamma_fold ~p ~m model in
  let g =
    Par.run_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
      ~trials ~init ~accumulate ~merge rng
  in
  (* the estimate is over the trials that actually ran; on a complete run
     [trials_done = trials] and this equals {!estimate} bit-for-bit *)
  { g with Par.value = estimate_of ~trials:g.Par.run_stats.Par.trials_done g.Par.value }

let probability_b ?(p = 0.5) ?(m = default_m) ?jobs ~trials ~gamma model rng =
  if trials <= 0 then invalid_arg "Mc.probability_b: trials must be positive";
  let successes = Par.count ?jobs ~trials (fun r -> sample_gamma ~p ~m model r = gamma) rng in
  (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)

let probability_b_governed ?(p = 0.5) ?(m = default_m) ?jobs ?budget ?checkpoint
    ?checkpoint_every ?resume ?max_retries ?fault ~trials ~gamma model rng =
  if trials <= 0 then invalid_arg "Mc.probability_b: trials must be positive";
  let g =
    Par.count_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
      ~trials
      (fun r -> sample_gamma ~p ~m model r = gamma)
      rng
  in
  let successes = g.Par.value and trials = g.Par.run_stats.Par.trials_done in
  (* intervals widen honestly as trials_done shrinks; with nothing done the
     interval is the vacuous [0, 1] *)
  let value =
    if trials = 0 then (Float.nan, { Stats.lo = 0.0; hi = 1.0 })
    else (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
  in
  { g with Par.value }
