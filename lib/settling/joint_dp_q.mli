(** {!Joint_dp} in exact rational arithmetic.

    The coupled bottom-run chains (see {!Joint_dp} for the reduction) run
    over {!Memrel_prob.Rational}, so the truncated joint window transform
    E[prod 2^(-i Gamma_i)] comes out as the exact dyadic rational it is for
    a given prefix length [m] and bottom-run cap [b_max] — the only
    approximation left is the same finite-[m]/[b_max] truncation the float
    version makes, now with zero rounding on top. SC dispatches to its
    closed form; WO (whose closed form is an infinite series) and Custom
    are rejected.

    This is also the heaviest exact-DP workload in the bench: the tensor
    has (b_max+1)^(n-1) rational entries updated m times.

    Functorized over {!Memrel_prob.Sigs.RATIONAL} for the
    fast-vs-reference bench; the toplevel values are the fast-path
    instance. *)

module Q = Memrel_prob.Rational
module Model = Memrel_memmodel.Model

val max_replicas : int
(** Largest supported [n - 1] (4, as in {!Joint_dp}). *)

module type S = sig
  type q
  (** The rational scalar of this instance. *)

  val expect_product :
    ?p:q -> ?b_max:int -> s:q -> Model.family -> m:int -> n:int -> q
  (** Exact [E[prod_{i=1}^{n-1} 2^(-i Gamma_i)]] for a prefix of length
      [m], with the bottom-run chains truncated at [b_max] (default
      [min m 40]). [p] (default 1/2) is the ST probability, [s] the swap
      probability; both must lie strictly inside (0,1). Requires
      [2 <= n <= max_replicas + 1]; only SC/TSO/PSO families. *)

  val bottom_run_pmf :
    ?p:q -> ?b_max:int -> s:q -> Model.family -> m:int -> q array
  (** Exact marginal pmf of the bottom-run length B after [m] prefix
      instructions (index mu holds Pr[B = mu]). TSO/PSO only. *)
end

module Make (Q : Memrel_prob.Sigs.RATIONAL) : S with type q = Q.t

include S with type q = Q.t

val expect_product_model :
  ?p:float -> ?b_max:int -> Model.t -> m:int -> n:int -> Q.t
(** Convenience wrapper lifting a float {!Model.t} exactly (every float
    probability is dyadic): [expect_product] with [family = Model.family]
    and [s = of_float_dyadic (Model.s model)]. *)
