(** Monte Carlo estimation of critical-window statistics.

    Samples the full program-generation + settling pipeline and estimates
    Pr[B_gamma] empirically, with confidence intervals. The prefix length
    [m] stands in for the paper's m -> infinity limit; the default 64 makes
    truncation effects (a critical LD bubbling off the top) smaller than
    2^-40, far below sampling noise. *)

type estimate = {
  gamma_pmf : (int * float) list;  (** empirical Pr[B_gamma] *)
  trials : int;
  mean_gamma : float;
  histogram : Memrel_prob.Stats.histogram;
}

val sample_gamma :
  ?p:float -> ?m:int -> Memrel_memmodel.Model.t -> Memrel_prob.Rng.t -> int
(** [sample_gamma model rng] draws one program, settles it, and returns the
    window growth gamma. *)

val estimate :
  ?p:float -> ?m:int -> ?jobs:int -> trials:int ->
  Memrel_memmodel.Model.t -> Memrel_prob.Rng.t -> estimate
(** [estimate ~trials model rng] aggregates [trials] samples, fanned out
    over [jobs] domains by {!Memrel_prob.Par} (default
    {!Memrel_prob.Par.default_jobs}; [jobs:1] stays on the calling domain).
    For a fixed seed the result is bit-identical at every [jobs]. *)

val probability_b :
  ?p:float -> ?m:int -> ?jobs:int -> trials:int -> gamma:int ->
  Memrel_memmodel.Model.t -> Memrel_prob.Rng.t ->
  float * Memrel_prob.Stats.interval
(** [probability_b ~trials ~gamma model rng] is the point estimate of
    Pr[B_gamma] with its 95% Wilson interval. [jobs] as in {!estimate}. *)

val probability_b_adaptive :
  ?p:float -> ?m:int -> ?jobs:int -> ?chunk:int ->
  ?budget:Memrel_prob.Budget.t ->
  ?report:(trials:int -> successes:int -> unit) -> ?report_every:int ->
  target_width:float -> max_trials:int -> gamma:int ->
  Memrel_memmodel.Model.t -> Memrel_prob.Rng.t ->
  (float * Memrel_prob.Stats.interval) Memrel_prob.Par.streamed
(** Adaptive {!probability_b}: runs until the 95% Wilson interval for
    Pr[B_gamma] has width [<= target_width] (checked at chunk boundaries on
    the schedule-order prefix — the stopping trial count is deterministic
    per (seed, schedule) and jobs-invariant), up to [max_trials]. Composes
    with [budget] (typed partial with an honestly widened interval, vacuous
    [[0, 1]] when nothing completed) and [report] (running estimate every
    [report_every] chunks). See {!Memrel_prob.Par.count_streaming}. *)

(** The pre-streaming per-trial closure path (fresh program/permutation
    structures every trial), kept as the differential-test and benchmark
    baseline: the streaming estimators reproduce these results
    bit-for-bit. *)
module Reference : sig
  val estimate :
    ?p:float -> ?m:int -> ?jobs:int -> trials:int ->
    Memrel_memmodel.Model.t -> Memrel_prob.Rng.t -> estimate

  val probability_b :
    ?p:float -> ?m:int -> ?jobs:int -> trials:int -> gamma:int ->
    Memrel_memmodel.Model.t -> Memrel_prob.Rng.t ->
    float * Memrel_prob.Stats.interval
end

val estimate_governed :
  ?p:float -> ?m:int -> ?jobs:int ->
  ?budget:Memrel_prob.Budget.t ->
  ?checkpoint:string -> ?checkpoint_every:int -> ?resume:string ->
  ?max_retries:int ->
  ?fault:(chunk:int -> attempt:int -> Memrel_prob.Par.fault option) ->
  trials:int ->
  Memrel_memmodel.Model.t -> Memrel_prob.Rng.t ->
  estimate Memrel_prob.Par.governed
(** {!estimate} under resource governance (see
    {!Memrel_prob.Par.run_governed}). On budget exhaustion the estimate
    covers the trials that completed ([run_stats.trials_done]), with
    [exhausted = Some _]; a complete governed run is bit-identical to
    {!estimate}. An immediately exhausted run returns the empty estimate
    ([trials = 0], [mean_gamma = nan]). *)

val probability_b_governed :
  ?p:float -> ?m:int -> ?jobs:int ->
  ?budget:Memrel_prob.Budget.t ->
  ?checkpoint:string -> ?checkpoint_every:int -> ?resume:string ->
  ?max_retries:int ->
  ?fault:(chunk:int -> attempt:int -> Memrel_prob.Par.fault option) ->
  trials:int -> gamma:int ->
  Memrel_memmodel.Model.t -> Memrel_prob.Rng.t ->
  (float * Memrel_prob.Stats.interval) Memrel_prob.Par.governed
(** Governed {!probability_b}. A partial run reports the estimate over the
    completed trials; the Wilson interval widens accordingly (with zero
    completed trials it is the vacuous [[0, 1]] around a [nan] point). *)

val sample_gamma_program :
  Memrel_memmodel.Model.t -> Memrel_prob.Rng.t -> Program.t -> int
(** Settle one given program (used when several threads must share the same
    initial program, as in the joined model). *)
