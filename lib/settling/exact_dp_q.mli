(** The finite-m window distribution in exact rational arithmetic.

    {!Exact_dp} computes in floats; this module re-runs the same dynamic
    program over {!Memrel_prob.Rational}, so finite-m statements become
    machine-checked identities rather than approximations — e.g. the total
    mass is *exactly* 1, and small-m window probabilities come out as the
    dyadic fractions they really are (TSO at m = 1: Pr[B_0] = 3/4,
    Pr[B_1] = 1/4). Parameters are rational too, so the footnote-3
    generality is preserved exactly.

    Rational arithmetic over 2^m states is costly, so [m] is capped lower
    than the float DP's.

    The DP is a functor over {!Memrel_prob.Sigs.RATIONAL} so the bench
    harness can run the identical program over the fast-path rationals and
    over {!Memrel_prob.Rational.Reference} and compare throughput; the
    toplevel values are the fast-path instance. *)

module Q = Memrel_prob.Rational

module type S = sig
  type q
  (** The rational scalar of this instance. *)

  type matrix = {
    st_st : q;
    st_ld : q;
    ld_st : q;
    ld_ld : q;
  }
  (** Swap probabilities rho(earlier, later), as in Table 1 / footnote 3.
      Entries must lie in [0, 1]. *)

  val sc : matrix
  val tso : ?s:q -> unit -> matrix
  val pso : ?s:q -> unit -> matrix
  val wo : ?s:q -> unit -> matrix
  (** Presets mirroring {!Memrel_memmodel.Model}; [s] defaults to 1/2. *)

  val of_model : Memrel_memmodel.Model.t -> matrix
  (** Exact dyadic lift of a float model (every float probability is a
      dyadic rational, so this is lossless). *)

  val max_m : int
  (** Largest accepted prefix length (12). *)

  val gamma_pmf : ?p:q -> matrix -> m:int -> (int * q) list
  (** [gamma_pmf matrix ~m] is the exact pmf of the window growth gamma.
      The returned masses sum to exactly 1 (tested as a rational
      identity). *)

  val bottom_st_probability : ?p:q -> matrix -> m:int -> q
  (** Exact finite-m Claim 4.3 quantity; under TSO with p = s = 1/2 it
      equals {!Analytic.st_bottom_prob} as a rational identity. *)
end

module Make (Q : Memrel_prob.Sigs.RATIONAL) : S with type q = Q.t

include S with type q = Q.t
