(** External-memory exhaustive enumeration: level-synchronized BFS with a
    disk-spilling frontier and a compacted on-disk visited set.

    The in-RAM engine ({!Enumerate.outcomes}) holds every packed state key
    in a hashtable, so the largest enumerable state space is bounded by the
    heap. This engine breaks that wall: per-level frontiers spill to
    delta-encoded sorted runs of packed keys (written through the
    {!Memrel_prob.Snapshot} container — tmp+rename atomic, CRC-32 framed),
    duplicate detection is a k-way merge of each new level against the
    sorted visited runs (delayed duplicate detection) with periodic
    compaction, and an in-RAM bloom filter screens most candidates without
    touching disk. RAM use is governed by [mem_budget_bytes]; disk use is
    proportional to the state space (roughly [bytes-per-packed-key ×
    states] before delta compression).

    {b Exactness.} Both engines expand successors through
    {!Enumerate.expand}, whose ample-set POR choice is a deterministic
    function of the state alone — so the two traversals explore the exact
    same reduced graph, and on complete runs every result field
    ([outcomes], per-outcome terminal counts, [states_visited],
    [terminals], [stats.transitions], [stats.dedup_hits]) is identical to
    the in-RAM engine's. Every transition executes one instruction or
    drains one buffer entry, so levels partition the state space and each
    state is expanded exactly once.

    {b Crash safety.} After every completed level the engine atomically
    replaces a manifest checkpoint (counters, run file lists, outcome
    table). A killed run restarted with [~resume:true] resumes from the
    last complete level and replays deterministically — the final result is
    bit-identical to an uninterrupted run. Corrupt, truncated or foreign
    spill state is rejected with {!Spill_error}, never silently decoded.
    See DESIGN.md §15. *)

exception Spill_error of string
(** Typed failure for everything disk-shaped: unreadable/corrupt run files
    or manifests, a resume-key mismatch, or an inconsistent spill
    directory. The payload is a one-line human-readable message. *)

type ext_stats = {
  levels : int;  (** BFS levels expanded *)
  spill_runs : int;  (** run files written (including merge intermediates) *)
  spill_bytes : int;  (** total payload bytes written to spill runs *)
  spill_generations : int;
      (** candidate-buffer spills forced by the memory budget mid-level —
          0 when every level's successor batch fit in RAM *)
  bloom_probes : int;
  bloom_hits : int;
  bloom_false_positives : int;
      (** bloom hits not confirmed by the visited runs. Because levels
          partition the state space, cross-level duplicates are impossible
          in this transition system and {e every} hit is a false positive;
          the generic visited-merge keeps the engine correct for any
          acyclic successor relation. *)
  compactions : int;  (** visited-run compaction passes *)
  peak_level_states : int;  (** widest BFS level (states) *)
  resumed_at_level : int option;  (** [Some l] when this run resumed at level [l] *)
}

type 'a result = { base : 'a Enumerate.result; ext : ext_stats }
(** [base] carries the same fields as the in-RAM engine (on complete runs,
    the same {e values}); [base.stats.max_frontier] reports the peak BFS
    level width rather than a worklist size, and [base.stats.max_depth] the
    deepest expanded level. *)

val outcomes :
  ?max_states:int ->
  ?por:bool ->
  ?budget:Memrel_prob.Budget.t ->
  ?mem_budget_bytes:int ->
  ?resume:bool ->
  spill_dir:string ->
  resume_key:string ->
  Semantics.discipline ->
  State.t ->
  observe:(State.t -> 'a) ->
  'a result
(** [outcomes ~spill_dir ~resume_key d st ~observe] explores exhaustively,
    spilling to [spill_dir] (created if absent; a fresh run deletes any
    leftover spill state in it first).

    [resume_key] names the enumeration (e.g. test hash + discipline +
    por): it is stored in the manifest, and [~resume:true] refuses — with
    {!Spill_error} — to resume a directory written for a different key.

    [mem_budget_bytes] (default 64 MiB) sizes the in-RAM structures: the
    candidate buffer and run chunks at budget/8, the bloom filter at
    budget/4. [max_states] defaults to unlimited (the point of this engine
    is to exceed RAM-bounded caps); the cap, [budget] and [states_visited]
    count unique states expanded, exactly as in {!Enumerate.outcomes}. A
    tripped cap or budget yields a partial result through
    [base.exhausted]; a [Memory] watermark trip is re-checked once per
    level after a [Gc.full_major] so transient garbage cannot end a run
    the live heap would survive.

    On completion the spill directory still holds the manifest and visited
    runs (a subsequent [~resume:true] call returns the final result
    without re-exploring); callers wanting the disk back use
    {!remove_spill_dir}. *)

val can_resume : string -> bool
(** Whether [dir] holds a manifest checkpoint — i.e. a prior run (complete
    or killed) that [~resume:true] would pick up. Existence only; the
    manifest is validated by the resume itself. *)

val remove_spill_dir : string -> unit
(** Delete the spill artifacts this engine writes (run files, manifest,
    leftover temporaries) and the directory itself if then empty. Never
    raises; foreign files are left in place. *)
