module IntMap = Map.Make (Int)

type thread = {
  prog : Instr.t array;
  executed : int;
  regs : int IntMap.t;
  fifo : (int * int) list;
  perloc : int list IntMap.t;
}

type t = { mem : int IntMap.t; threads : thread array }

let max_prog_len = 60

let init ~programs ~initial_mem =
  let mk prog =
    if Array.length prog > max_prog_len then invalid_arg "State.init: program too long";
    { prog; executed = 0; regs = IntMap.empty; fifo = []; perloc = IntMap.empty }
  in
  let mem = List.fold_left (fun m (loc, v) -> IntMap.add loc v m) IntMap.empty initial_mem in
  { mem; threads = Array.of_list (List.map mk programs) }

let reg th r = Option.value ~default:0 (IntMap.find_opt r th.regs)
let mem_read st loc = Option.value ~default:0 (IntMap.find_opt loc st.mem)

let is_executed th i = th.executed land (1 lsl i) <> 0

let next_unexecuted th =
  let n = Array.length th.prog in
  let rec go i = if i >= n || not (is_executed th i) then i else go (i + 1) in
  go 0

let buffers_empty th = th.fifo = [] && IntMap.for_all (fun _ l -> l = []) th.perloc

let thread_done th = th.executed = (1 lsl Array.length th.prog) - 1 && buffers_empty th

let all_done st = Array.for_all thread_done st.threads

let buffered_read_fifo th loc =
  (* newest = last matching entry *)
  List.fold_left (fun acc (l, v) -> if l = loc then Some v else acc) None th.fifo

let buffered_read_perloc th loc =
  match IntMap.find_opt loc th.perloc with
  | None | Some [] -> None
  | Some l -> Some (List.nth l (List.length l - 1))

(* zigzag + base-128 varint: injective on the int's bit pattern, so the
   concatenation below (with count prefixes) is a canonical encoding *)
let add_varint buf n =
  let u = ref ((n lsl 1) lxor (n asr (Sys.int_size - 1))) in
  while !u land lnot 0x7f <> 0 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!u land 0x7f)));
    u := !u lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !u)

let add_packed buf st =
  (* zero-valued mem/reg bindings read identically to absent ones: skip
     them so the encoding is canonical; every variable-length section is
     count-prefixed so the byte string is unambiguous *)
  let nonzero m = IntMap.fold (fun _ v n -> if v <> 0 then n + 1 else n) m 0 in
  add_varint buf (nonzero st.mem);
  IntMap.iter (fun l v -> if v <> 0 then (add_varint buf l; add_varint buf v)) st.mem;
  Array.iter
    (fun th ->
      add_varint buf th.executed;
      add_varint buf (nonzero th.regs);
      IntMap.iter (fun r v -> if v <> 0 then (add_varint buf r; add_varint buf v)) th.regs;
      add_varint buf (List.length th.fifo);
      List.iter (fun (l, v) -> add_varint buf l; add_varint buf v) th.fifo;
      add_varint buf (IntMap.fold (fun _ q n -> if q <> [] then n + 1 else n) th.perloc 0);
      IntMap.iter
        (fun l q ->
          if q <> [] then begin
            add_varint buf l;
            add_varint buf (List.length q);
            List.iter (add_varint buf) q
          end)
        th.perloc)
    st.threads

let packed_key st =
  let buf = Buffer.create 64 in
  add_packed buf st;
  Buffer.contents buf

(* -- packed-key decoding ------------------------------------------------
   The inverse of [add_packed]: the external-memory enumerator stores only
   packed keys on disk and must rebuild full states to expand them. The
   programs are not part of the key (they are invariant over a state
   space), so the caller supplies them. *)

let decode_error () = invalid_arg "State.of_packed_key: malformed key"

let read_varint s pos =
  let u = ref 0 and shift = ref 0 and again = ref true in
  while !again do
    (* 9 seven-bit groups cover a 63-bit int; a 10th would shift past the
       word (unspecified in OCaml), so reject overlong encodings first *)
    if !pos >= String.length s || !shift > Sys.int_size - 7 then decode_error ();
    let b = Char.code (String.unsafe_get s !pos) in
    incr pos;
    u := !u lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then again := false
  done;
  (* undo the zigzag *)
  (!u lsr 1) lxor (- (!u land 1))

let of_packed_key ~programs key =
  let pos = ref 0 in
  let next () = read_varint key pos in
  let nonneg () =
    let n = next () in
    if n < 0 then decode_error ();
    n
  in
  let read_pairs n =
    let rec go m k =
      if k = 0 then m
      else begin
        let a = next () in
        let b = next () in
        go (IntMap.add a b m) (k - 1)
      end
    in
    go IntMap.empty n
  in
  (* builds in encoding order: queue entries are oldest-first on both sides *)
  let read_list n f =
    let rec go acc k = if k = 0 then List.rev acc else go (f () :: acc) (k - 1) in
    go [] n
  in
  let mem = read_pairs (nonneg ()) in
  let threads =
    List.map
      (fun prog ->
        let executed = next () in
        if executed < 0 || executed >= 1 lsl Array.length prog then decode_error ();
        let regs = read_pairs (nonneg ()) in
        let fifo =
          read_list (nonneg ()) (fun () ->
              let l = next () in
              let v = next () in
              (l, v))
        in
        let perloc =
          let n = nonneg () in
          let rec go m k =
            if k = 0 then m
            else begin
              let l = next () in
              let q = read_list (nonneg ()) next in
              go (IntMap.add l q m) (k - 1)
            end
          in
          go IntMap.empty n
        in
        { prog; executed; regs; fifo; perloc })
      programs
  in
  if !pos <> String.length key then decode_error ();
  { mem; threads = Array.of_list threads }

let key st =
  let buf = Buffer.create 128 in
  (* zero-valued bindings read identically to absent ones: skip them so the
     key is canonical *)
  IntMap.iter (fun l v -> if v <> 0 then Buffer.add_string buf (Printf.sprintf "%d:%d;" l v)) st.mem;
  Array.iter
    (fun th ->
      Buffer.add_string buf (Printf.sprintf "|e%d" th.executed);
      IntMap.iter
        (fun r v -> if v <> 0 then Buffer.add_string buf (Printf.sprintf "r%d=%d;" r v))
        th.regs;
      List.iter (fun (l, v) -> Buffer.add_string buf (Printf.sprintf "f%d,%d;" l v)) th.fifo;
      IntMap.iter
        (fun l vs ->
          if vs <> [] then begin
            Buffer.add_string buf (Printf.sprintf "p%d=" l);
            List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%d," v)) vs
          end)
        th.perloc)
    st.threads;
  Buffer.contents buf

let pp fmt st =
  Format.fprintf fmt "mem:";
  IntMap.iter (fun l v -> Format.fprintf fmt " [%d]=%d" l v) st.mem;
  Array.iteri
    (fun i th ->
      Format.fprintf fmt "@.T%d: executed=%x regs:" i th.executed;
      IntMap.iter (fun r v -> Format.fprintf fmt " r%d=%d" r v) th.regs;
      if th.fifo <> [] then begin
        Format.fprintf fmt " fifo:";
        List.iter (fun (l, v) -> Format.fprintf fmt " (%d,%d)" l v) th.fifo
      end)
    st.threads
