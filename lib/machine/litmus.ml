module Model = Memrel_memmodel.Model
module Fence = Memrel_memmodel.Fence
open Instr

type outcome = (string * int) list

type t = {
  name : string;
  description : string;
  programs : Instr.t array list;
  initial_mem : (int * int) list;
  observe : State.t -> outcome;
  relaxed_outcome : outcome;
  allowed_under : Model.family -> bool;
}

let x = 0
let y = 1

let observe_regs specs st =
  List.sort compare
    (List.map
       (fun (thread, r) ->
         (Printf.sprintf "%d:r%d" thread r, State.reg st.State.threads.(thread) r))
       specs)

let observe_mem locs st =
  List.sort compare (List.map (fun (name, loc) -> (name, State.mem_read st loc)) locs)

let only families f = List.mem f families

let sb =
  {
    name = "sb";
    description = "store buffering: both threads store then load the other location";
    programs =
      [ [| store ~loc:x ~src:(Imm 1); load ~reg:0 ~loc:y |];
        [| store ~loc:y ~src:(Imm 1); load ~reg:0 ~loc:x |] ];
    initial_mem = [];
    observe = observe_regs [ (0, 0); (1, 0) ];
    relaxed_outcome = [ ("0:r0", 0); ("1:r0", 0) ];
    allowed_under =
      only [ Model.Total_store_order; Model.Partial_store_order; Model.Weak_ordering ];
  }

let sb_fence =
  {
    sb with
    name = "sb+fence";
    description = "store buffering with full fences: the relaxed outcome is forbidden everywhere";
    programs =
      [ [| store ~loc:x ~src:(Imm 1); fence Fence.Full; load ~reg:0 ~loc:y |];
        [| store ~loc:y ~src:(Imm 1); fence Fence.Full; load ~reg:0 ~loc:x |] ];
    allowed_under = only [];
  }

let mp =
  {
    name = "mp";
    description = "message passing: data then flag; reader sees flag but stale data?";
    programs =
      [ [| store ~loc:x ~src:(Imm 1); store ~loc:y ~src:(Imm 1) |];
        [| load ~reg:0 ~loc:y; load ~reg:1 ~loc:x |] ];
    initial_mem = [];
    observe = observe_regs [ (1, 0); (1, 1) ];
    relaxed_outcome = [ ("1:r0", 1); ("1:r1", 0) ];
    allowed_under = only [ Model.Partial_store_order; Model.Weak_ordering ];
  }

let mp_rel_acq =
  {
    mp with
    name = "mp+ra";
    description = "message passing with release/acquire fences: forbidden everywhere";
    programs =
      [ [| store ~loc:x ~src:(Imm 1); fence Fence.Release; store ~loc:y ~src:(Imm 1) |];
        [| load ~reg:0 ~loc:y; fence Fence.Acquire; load ~reg:1 ~loc:x |] ];
    allowed_under = only [];
  }

let lb =
  {
    name = "lb";
    description = "load buffering: loads see the other thread's later store";
    programs =
      [ [| load ~reg:0 ~loc:x; store ~loc:y ~src:(Imm 1) |];
        [| load ~reg:0 ~loc:y; store ~loc:x ~src:(Imm 1) |] ];
    initial_mem = [];
    observe = observe_regs [ (0, 0); (1, 0) ];
    relaxed_outcome = [ ("0:r0", 1); ("1:r0", 1) ];
    allowed_under = only [ Model.Weak_ordering ];
  }

let corr =
  {
    name = "corr";
    description = "coherence: two reads of one location must not see new-then-old";
    programs =
      [ [| store ~loc:x ~src:(Imm 1) |]; [| load ~reg:0 ~loc:x; load ~reg:1 ~loc:x |] ];
    initial_mem = [];
    observe = observe_regs [ (1, 0); (1, 1) ];
    relaxed_outcome = [ ("1:r0", 1); ("1:r1", 0) ];
    allowed_under = only [];
  }

let wrc =
  {
    name = "wrc";
    description = "write-to-read causality across three threads";
    programs =
      [ [| store ~loc:x ~src:(Imm 1) |];
        [| load ~reg:0 ~loc:x; store ~loc:y ~src:(Imm 1) |];
        [| load ~reg:0 ~loc:y; load ~reg:1 ~loc:x |] ];
    initial_mem = [];
    observe =
      (fun st ->
        List.sort compare
          (observe_regs [ (1, 0) ] st @ observe_regs [ (2, 0); (2, 1) ] st));
    relaxed_outcome = [ ("1:r0", 1); ("2:r0", 1); ("2:r1", 0) ];
    allowed_under = only [ Model.Weak_ordering ];
  }

let iriw =
  {
    name = "iriw";
    description = "independent reads of independent writes: readers disagree on store order";
    programs =
      [ [| store ~loc:x ~src:(Imm 1) |];
        [| store ~loc:y ~src:(Imm 1) |];
        [| load ~reg:0 ~loc:x; load ~reg:1 ~loc:y |];
        [| load ~reg:0 ~loc:y; load ~reg:1 ~loc:x |] ];
    initial_mem = [];
    observe =
      (fun st ->
        List.sort compare (observe_regs [ (2, 0); (2, 1); (3, 0); (3, 1) ] st));
    relaxed_outcome = [ ("2:r0", 1); ("2:r1", 0); ("3:r0", 1); ("3:r1", 0) ];
    allowed_under = only [ Model.Weak_ordering ];
  }

let increment_thread =
  [| load ~reg:0 ~loc:x; binop ~dst:0 Add (Reg 0) (Imm 1); store ~loc:x ~src:(Reg 0) |]

let inc =
  {
    name = "inc";
    description =
      "the canonical atomicity violation (Section 2.2): two unsynchronized increments; \
       x = 1 manifests the bug and is allowed under every model, including SC";
    programs = [ increment_thread; increment_thread ];
    initial_mem = [];
    observe = observe_mem [ ("x", x) ];
    relaxed_outcome = [ ("x", 1) ];
    allowed_under = (fun _ -> true);
  }

let sb_one_fence =
  {
    sb with
    name = "sb+fence1";
    description = "store buffering fenced in one thread only: the relaxed outcome survives";
    programs =
      [ [| store ~loc:x ~src:(Imm 1); fence Fence.Full; load ~reg:0 ~loc:y |];
        [| store ~loc:y ~src:(Imm 1); load ~reg:0 ~loc:x |] ];
    allowed_under =
      only [ Model.Total_store_order; Model.Partial_store_order; Model.Weak_ordering ];
  }

let two_plus_two_w =
  {
    name = "2+2w";
    description = "2+2W: two threads write both locations in opposite orders";
    programs =
      [ [| store ~loc:x ~src:(Imm 1); store ~loc:y ~src:(Imm 2) |];
        [| store ~loc:y ~src:(Imm 1); store ~loc:x ~src:(Imm 2) |] ];
    initial_mem = [];
    observe = observe_mem [ ("x", x); ("y", y) ];
    relaxed_outcome = [ ("x", 1); ("y", 1) ];
    (* both final writes being the FIRST writes requires ST/ST reordering *)
    allowed_under = only [ Model.Partial_store_order; Model.Weak_ordering ];
  }

let increment_n n =
  if n < 2 then invalid_arg "Litmus.increment_n: n >= 2 required";
  {
    name = Printf.sprintf "inc%d" n;
    description =
      Printf.sprintf "the canonical atomicity violation with %d incrementing threads" n;
    programs = List.init n (fun _ -> increment_thread);
    initial_mem = [];
    observe = observe_mem [ ("x", x) ];
    relaxed_outcome = [ ("x", 1) ];
    allowed_under = (fun _ -> true);
  }

let inc_atomic =
  {
    name = "inc+rmw";
    description =
      "the canonical bug FIXED with an atomic fetch-and-add: x = 1 becomes unreachable \
       under every model (the Section 2.2 locking discussion, primitive form)";
    programs =
      [ [| rmw ~reg:0 ~loc:x Add (Imm 1) |]; [| rmw ~reg:0 ~loc:x Add (Imm 1) |] ];
    initial_mem = [];
    observe = observe_mem [ ("x", x) ];
    relaxed_outcome = [ ("x", 1) ];
    allowed_under = only [];
  }

let all =
  [ inc; inc_atomic; sb; sb_fence; sb_one_fence; mp; mp_rel_acq; lb; corr; two_plus_two_w; wrc;
    iriw ]

let names = List.map (fun t -> t.name) all

let find name =
  match List.find_opt (fun t -> String.equal t.name name) all with
  | Some t -> t
  | None ->
    (* "incN" names the generalized increment family, e.g. "inc4" *)
    if String.length name > 3 && String.sub name 0 3 = "inc" then begin
      match int_of_string_opt (String.sub name 3 (String.length name - 3)) with
      | Some n when n >= 2 -> increment_n n
      | _ -> raise Not_found
    end
    else raise Not_found

(* -- structural hash ---------------------------------------------------
   FNV-1a over a canonical byte encoding of everything that determines a
   test's semantics: the per-thread instruction streams, the initial
   memory, and the observation spec (via the relaxed outcome's observable
   names — two tests with identical programs but different observations
   must not share a cache entry). The name and description are deliberately
   excluded: the service cache must key on structure, not on what a client
   chose to call the test. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash t =
  let h = ref fnv_offset in
  let mix_byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) fnv_prime in
  let mix_int v =
    (* 8 little-endian bytes of the (boxed-to-63-bit) int *)
    for shift = 0 to 7 do
      mix_byte ((v asr (8 * shift)) land 0xff)
    done
  in
  let mix_string s =
    mix_int (String.length s);
    String.iter (fun c -> mix_byte (Char.code c)) s
  in
  let mix_operand = function
    | Instr.Reg r -> mix_int 0; mix_int r
    | Instr.Imm v -> mix_int 1; mix_int v
  in
  let mix_binop = function Instr.Add -> mix_int 0 | Instr.Sub -> mix_int 1 | Instr.Mul -> mix_int 2 in
  let mix_instr = function
    | Instr.Load { reg; loc } -> mix_int 0; mix_int reg; mix_int loc
    | Instr.Store { loc; src } -> mix_int 1; mix_int loc; mix_operand src
    | Instr.Binop { dst; op; a; b } -> mix_int 2; mix_int dst; mix_binop op; mix_operand a; mix_operand b
    | Instr.Rmw { reg; loc; op; operand } ->
      mix_int 3; mix_int reg; mix_int loc; mix_binop op; mix_operand operand
    | Instr.Fence f ->
      mix_int 4;
      mix_int (match f with Fence.Acquire -> 0 | Fence.Release -> 1 | Fence.Full -> 2)
  in
  mix_int (List.length t.programs);
  List.iter
    (fun prog ->
      mix_int (Array.length prog);
      Array.iter mix_instr prog)
    t.programs;
  let init = List.sort compare t.initial_mem in
  mix_int (List.length init);
  List.iter (fun (loc, v) -> mix_int loc; mix_int v) init;
  mix_int (List.length t.relaxed_outcome);
  List.iter (fun (name, v) -> mix_string name; mix_int v) t.relaxed_outcome;
  Printf.sprintf "%016Lx" !h

let structure t =
  let threads = List.length t.programs in
  let locs = Hashtbl.create 8 in
  List.iter (fun (loc, _) -> Hashtbl.replace locs loc ()) t.initial_mem;
  let events = ref 0 in
  List.iter
    (fun prog ->
      Array.iter
        (fun i ->
          (match Instr.loc_accessed i with Some l -> Hashtbl.replace locs l () | None -> ());
          if Instr.is_load i || Instr.is_store i then incr events)
        prog)
    t.programs;
  (threads, Hashtbl.length locs, !events)

let corpus_table () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-16s %7s %4s %6s  %s\n" "name" "hash" "threads" "locs" "events"
       "description");
  List.iter
    (fun t ->
      let threads, locs, events = structure t in
      Buffer.add_string buf
        (Printf.sprintf "%-10s %-16s %7d %4d %6d  %s\n" t.name (hash t) threads locs events
           t.description))
    all;
  Buffer.contents buf

let initial_state t = State.init ~programs:t.programs ~initial_mem:t.initial_mem

let run_exhaustive ?window ?max_states ?por t family =
  let discipline = Semantics.of_model ?window family in
  Enumerate.outcomes ?max_states ?por discipline (initial_state t) ~observe:t.observe

let outcome_set ?window ?max_states ?por t family =
  Enumerate.outcome_set (run_exhaustive ?window ?max_states ?por t family)

type verdict = {
  test : string;
  model : Model.family;
  observed_relaxed : bool;
  expected_relaxed : bool;
  agrees : bool;
  outcome_count : int;
}

let check ?window t family =
  let r = run_exhaustive ?window t family in
  let observed_relaxed = List.mem_assoc t.relaxed_outcome r.Enumerate.outcomes in
  let expected_relaxed = t.allowed_under family in
  {
    test = t.name;
    model = family;
    observed_relaxed;
    expected_relaxed;
    agrees = observed_relaxed = expected_relaxed;
    outcome_count = List.length r.Enumerate.outcomes;
  }

let check_all ?window () =
  let families =
    [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
      Model.Weak_ordering ]
  in
  List.concat_map (fun t -> List.map (fun f -> check ?window t f) families) all
