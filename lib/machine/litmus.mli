(** Litmus-test corpus with per-model expectations.

    Each test names a distinguished "relaxed outcome" — the observation the
    literature asks about — together with the set of paper models expected
    to allow it under this simulator's semantics. {!check} runs the
    exhaustive enumerator and verdicts the expectation; the test suite does
    this for the whole corpus under all four models, which is the
    end-to-end validation of the operational substrate. The corpus includes
    the canonical atomicity violation of Section 2.2 (allowed everywhere,
    including SC — exactly the paper's point of departure). *)

type outcome = (string * int) list
(** Named observables, e.g. [("0:r0", 1); ("1:r1", 0); ("x", 2)], sorted by
    name. *)

type t = {
  name : string;
  description : string;
  programs : Instr.t array list;
  initial_mem : (int * int) list;
  observe : State.t -> outcome;
  relaxed_outcome : outcome;
  allowed_under : Memrel_memmodel.Model.family -> bool;
      (** expected: may [relaxed_outcome] occur under the model? *)
}

val x : int
(** Location 0 — the shared variable of the canonical bug. *)

val y : int
(** Location 1. *)

val observe_regs : (int * int) list -> State.t -> outcome
(** [observe_regs specs] observes [(thread, reg)] pairs, named
    ["<thread>:r<reg>"]. *)

val all : t list
(** The corpus: canonical increment (atomicity violation), the same bug
    fixed with an atomic fetch-and-add, store buffering (SB), SB with full
    fences, SB fenced on one side only, message passing (MP), MP with
    release/acquire fences, load buffering (LB), coherence (CoRR), 2+2W,
    write-to-read causality (WRC), independent reads of independent writes
    (IRIW). *)

val increment_n : int -> t
(** [increment_n n] is the canonical atomicity violation generalized to [n]
    unsynchronized incrementing threads (observing the final value of x;
    the relaxed outcome asked about is x = 1, the maximal loss). The paper's
    Theorem 6.3 regime, machine-side. Requires [n >= 2]. *)

val names : string list
(** The corpus test names, in {!all} order — what an "unknown test" error
    should offer the user. *)

val find : string -> t
(** Lookup by name. Names of the form ["incN"] (N >= 2) resolve to
    {!increment_n}[ N] even though only the corpus tests are in {!all}.
    Raises [Not_found]. *)

val hash : t -> string
(** Stable structural digest (16 hex chars, FNV-1a 64) over the instruction
    streams, initial memory and the relaxed-outcome observable spec —
    independent of [name]/[description], so renaming a test cannot alias or
    split a service cache entry. Collision-free across the corpus (tested,
    including the [incN] family and the parsed [.litmus] files). *)

val structure : t -> int * int * int
(** [(threads, distinct locations, memory events)] — locations counted over
    instruction accesses and the initial memory, events over loads, stores
    and RMWs. *)

val corpus_table : unit -> string
(** The `memrel litmus list` listing: one row per corpus test with its
    {!hash} and {!structure} counts. Pinned by a golden test. *)

val initial_state : t -> State.t

val run_exhaustive :
  ?window:int ->
  ?max_states:int ->
  ?por:bool ->
  t ->
  Memrel_memmodel.Model.family ->
  outcome Enumerate.result
(** All outcomes of the test under a model's discipline. [max_states] and
    [por] are passed to {!Enumerate.outcomes}. *)

val outcome_set :
  ?window:int ->
  ?max_states:int ->
  ?por:bool ->
  t ->
  Memrel_memmodel.Model.family ->
  outcome list
(** The distinct reachable observations only, sorted — the operational
    side of the axiomatic-vs-operational differential check. *)

type verdict = {
  test : string;
  model : Memrel_memmodel.Model.family;
  observed_relaxed : bool;
  expected_relaxed : bool;
  agrees : bool;
  outcome_count : int;
}

val check : ?window:int -> t -> Memrel_memmodel.Model.family -> verdict
(** Compare observed reachability of the relaxed outcome against the
    expectation. *)

val check_all : ?window:int -> unit -> verdict list
(** Every test under every standard model family. *)
