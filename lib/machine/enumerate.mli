(** Exhaustive state-space exploration (stateless model checking).

    Iterative worklist search over the transition relation with compact
    structural state deduplication — the recursion depth is bounded only by
    the heap, so deep state spaces (e.g. [Litmus.increment_n 4] and beyond)
    enumerate without [Stack_overflow]. Every reachable final state — hence
    the complete set of observable outcomes under a memory model — is
    computed exactly. This is what turns the operational simulator into an
    oracle for "is this relaxed outcome allowed under model M?".

    With [~por:true] an ample-set partial-order reduction prunes
    interleavings of provably independent transitions (thread-local steps,
    and accesses to locations disjoint from every other thread's remaining
    footprint). The reduction preserves the reachable terminal-state set
    exactly — outcome sets and terminal counts are identical with and
    without it (property-tested over the whole litmus corpus); only
    [states_visited] and the exploration statistics shrink. The soundness
    argument is spelled out in DESIGN.md §8. *)

type stats = {
  elapsed_s : float;  (** wall-clock exploration time *)
  states_per_sec : float;  (** distinct states admitted per second *)
  transitions : int;  (** transitions taken (successor edges followed) *)
  dedup_hits : int;  (** successors discarded as already-visited states *)
  max_depth : int;  (** deepest state expanded (path length from the root) *)
  max_frontier : int;  (** peak worklist size *)
  por_ample_states : int;  (** states where an ample subset was selected *)
  por_pruned : int;  (** transitions pruned by the ample-set reduction *)
}

type 'a result = {
  outcomes : ('a * int) list;
      (** distinct observations with the number of distinct terminal states
          mapping to each, sorted by observation *)
  states_visited : int;
  terminals : int;
  stats : stats;
  exhausted : Memrel_prob.Budget.exhaustion option;
      (** [None] iff the exploration ran to completion. [Some _] marks a
          {e partial} exploration — outcomes/terminals cover only the states
          expanded before the state cap or a {!Memrel_prob.Budget} limit
          tripped (cause [Work] for the [max_states] cap, where admitted
          states are the work units). A partial outcome set is a {e subset}
          of the true one: sound for "outcome X is reachable", never for
          "outcome X is impossible". *)
}

exception State_limit of { max_states : int; states_visited : int; terminals : int }
(** @deprecated Exceeding [max_states] now returns a partial result (see
    the [exhausted] field). This pre-governance exception is kept for
    callers that preferred the abort and is raised only when {!outcomes} is
    called with [~legacy_raise:true]. *)

val expand :
  por:bool -> Semantics.discipline -> State.t -> (Semantics.label * State.t) list * int
(** [expand ~por d st] is one state's successor computation — the enabled
    transitions, after the ample-set reduction when [por] is set — together
    with the number of transitions the reduction pruned at this state. The
    POR choice is a deterministic function of the state alone, so engines
    with different traversal orders (the in-RAM worklist here, the
    level-synchronized external-memory BFS in {!Extmem}) explore the exact
    same reduced graph. An empty successor list identifies a terminal
    state. *)

val outcomes :
  ?max_states:int ->
  ?por:bool ->
  ?legacy_key:bool ->
  ?budget:Memrel_prob.Budget.t ->
  ?legacy_raise:bool ->
  Semantics.discipline ->
  State.t ->
  observe:(State.t -> 'a) ->
  'a result
(** [outcomes d st ~observe] explores exhaustively. At most [max_states]
    (default 2_000_000) distinct states are {e expanded}; at the cap the
    exploration stops and returns a partial result with
    [exhausted = Some { cause = Work; _ }] (or raises {!State_limit} when
    [legacy_raise] is [true]). The cap, the budget and [states_visited] all
    count unique states actually expanded — never duplicates, and never
    states merely sitting on the worklist — so a partial run has explored
    exactly [max_states] distinct states (historically the cap fired on
    {e admission}, while the worklist could still hold unexplored unique
    states that were then abandoned and miscounted). [budget] is checked at
    every expansion, spending one work unit per expanded state; tripping
    any of its limits (deadline, work cap, memory watermark) likewise
    yields a partial result. [por] (default [false]) enables the ample-set
    partial-order reduction. [legacy_key] (default [false]) deduplicates
    with the original [Printf]-built {!State.key} instead of
    {!State.packed_key} — kept so the bench can measure the two paths
    against each other. *)

val outcome_set : 'a result -> 'a list
(** The distinct observations of a result, without their terminal-state
    counts and in the same sorted order — the set an alternative semantics
    (e.g. the axiomatic checker in [lib/axiom]) must reproduce exactly. *)

val reachable_terminal_count :
  ?max_states:int -> ?por:bool -> Semantics.discipline -> State.t -> int
(** Number of distinct terminal states. *)
