(** Operational semantics per memory model: the transition relation.

    - {b SC}: one interleaving choice — each step atomically executes the
      next instruction of some thread against shared memory.
    - {b TSO}: stores enter a per-thread FIFO buffer; a separate
      nondeterministic flush step publishes the oldest entry. Loads forward
      from the own buffer (newest matching entry) before reading memory.
      Full/Release fences execute only on an empty buffer; Acquire is a
      no-op (loads are already in order).
    - {b PSO}: like TSO but one FIFO per location, so stores to distinct
      locations may publish out of order.
    - {b WO}: out-of-order issue within a bounded window — any unexecuted
      instruction may execute once every earlier conflicting instruction
      has (register hazards, same-location accesses — including load/load,
      as read-read coherence requires — and fence
      edges); loads and stores act on memory directly. Fence edges follow
      the usual one-way readings: Acquire waits for earlier loads and
      blocks everything later; Release waits for everything earlier and
      blocks later stores; Full blocks both ways.

    Store atomicity is not relaxed (all threads see a single memory order
    of published stores), matching the paper's scope (Section 2.1). *)

type discipline =
  | Sc
  | Tso
  | Pso
  | Wo of { window : int }  (** max distance an instruction may run ahead *)

val of_model : ?window:int -> Memrel_memmodel.Model.family -> discipline
(** [of_model family] picks the discipline for a paper model
    ([window] defaults to 8; [Custom] is rejected). *)

type label =
  | Exec of { thread : int; index : int }  (** instruction issue *)
  | Flush of { thread : int; loc : int }  (** store-buffer publish *)

val label_to_string : label -> string

val transitions : discipline -> State.t -> (label * State.t) list
(** All enabled transitions from a state; the empty list exactly on
    terminal states (every thread done, buffers drained). *)

val thread_transitions : discipline -> State.t -> int -> (label * State.t) list
(** [thread_transitions d st k]: the enabled transitions of thread [k]
    only. [transitions] is their concatenation over all threads, in thread
    order; exposed so the enumerator's partial-order reduction can select
    an ample thread without re-deriving the grouping from labels.
    A thread's enabledness depends only on its own context (program
    counter, window hazards, its buffers) — never on other threads or on
    shared memory — a fact the reduction's soundness argument relies on
    (DESIGN.md §8). *)

val conflicts : Instr.t array -> int -> int -> bool
(** [conflicts prog j i] (for [j < i]): must [j] execute before [i] under
    WO? Exposed for property tests. *)
