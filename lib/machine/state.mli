(** Machine state for the operational simulator.

    A state is the shared memory plus per-thread contexts (program,
    executed-instruction set, registers, and the store-buffer structures
    used by TSO/PSO). States are immutable; {!key} provides a canonical
    serialization so the exhaustive enumerator can deduplicate states that
    compare structurally different (Map balance) but are semantically
    equal. *)

module IntMap : Map.S with type key = int

type thread = {
  prog : Instr.t array;
  executed : int;  (** bitmask over instruction indices *)
  regs : int IntMap.t;  (** absent register = 0 *)
  fifo : (int * int) list;  (** TSO store buffer: (loc, value), oldest first *)
  perloc : int list IntMap.t;  (** PSO buffers: per-location FIFO, oldest first *)
}

type t = { mem : int IntMap.t; threads : thread array }

val init : programs:Instr.t array list -> initial_mem:(int * int) list -> t
(** Fresh state: nothing executed, empty buffers, registers zero, memory
    zero except the given bindings. Programs are capped at 60 instructions
    (the executed bitmask lives in a native int). *)

val reg : thread -> int -> int
val mem_read : t -> int -> int
(** Shared-memory value, ignoring store buffers (0 when never written). *)

val is_executed : thread -> int -> bool
val next_unexecuted : thread -> int
(** Lowest unexecuted instruction index ([Array.length prog] when done). *)

val thread_done : thread -> bool
(** All instructions executed and both buffers drained. *)

val all_done : t -> bool

val buffered_read_fifo : thread -> int -> int option
(** Newest buffered value for a location in the TSO FIFO, if any. *)

val buffered_read_perloc : thread -> int -> int option
(** Newest buffered value for a location in the PSO buffers, if any. *)

val key : t -> string
(** Canonical human-readable serialization. Retained as the legacy
    deduplication key so the enumeration bench can measure it against
    {!packed_key}; new code should prefer the packed form. *)

val packed_key : t -> string
(** Canonical compact serialization: zigzag-varint byte string with
    count-prefixed sections, no [Printf] on the path. Two states have equal
    packed keys iff they are semantically equal (same executed sets,
    registers, buffers and memory, with zero-valued bindings normalized
    away) — the enumerator's deduplication key. *)

val add_packed : Buffer.t -> t -> unit
(** Append the {!packed_key} encoding to a caller-owned buffer (lets the
    enumerator reuse one scratch buffer across millions of states). *)

val of_packed_key : programs:Instr.t array list -> string -> t
(** Decode a {!packed_key} byte string back into a full state. The
    programs are not part of the key (they never change over a state
    space), so the caller supplies the same list it gave {!init}; thread
    count and order must match the encoder's. Round-trip law:
    [packed_key (of_packed_key ~programs (packed_key st)) = packed_key st],
    and the decoded state is semantically identical (same transitions,
    observations, and key) — what lets the external-memory enumerator keep
    only keys on disk and rebuild states to expand them. Raises
    [Invalid_argument] on truncated, overlong or trailing bytes — malformed
    input is never decoded into a plausible-but-wrong state. *)

val pp : Format.formatter -> t -> unit
