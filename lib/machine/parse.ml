module Fence = Memrel_memmodel.Fence

exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_ident_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_'

let is_location_name s =
  String.length s > 0
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && String.for_all is_ident_char s
  && not (String.length s >= 2 && s.[0] = 'r' && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1)))

let register_of_string s =
  if String.length s >= 2 && s.[0] = 'r' then begin
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 -> Some n
    | _ -> None (* e.g. "rate": a location name, not a register *)
  end
  else None

let tokens_of_line s = String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* location environment: first-appearance numbering via a hashtable, with
   the bindings accumulated in reverse so neither lookup nor extension is
   linear in the number of distinct locations *)
type env = {
  tbl : (string, int) Hashtbl.t;
  mutable rev_locations : (string * int) list;
  mutable count : int;
}

let env_create locations =
  let env = { tbl = Hashtbl.create 16; rev_locations = []; count = 0 } in
  List.iter
    (fun (name, l) ->
      Hashtbl.replace env.tbl name l;
      env.rev_locations <- (name, l) :: env.rev_locations;
      env.count <- max env.count (l + 1))
    locations;
  env

let env_locations env = List.rev env.rev_locations

let lookup_loc env name =
  match Hashtbl.find_opt env.tbl name with
  | Some l -> l
  | None ->
    let l = env.count in
    Hashtbl.add env.tbl name l;
    env.rev_locations <- (name, l) :: env.rev_locations;
    env.count <- l + 1;
    l

let operand_of_token ~line env tok =
  match int_of_string_opt tok with
  | Some i -> `Imm i
  | None ->
    (match register_of_string tok with
     | Some r -> `Reg r
     | None ->
       if is_location_name tok then `Loc (lookup_loc env tok)
       else fail line "cannot parse operand %S" tok)

let instr_operand ~line = function
  | `Imm i -> Instr.Imm i
  | `Reg r -> Instr.Reg r
  | `Loc _ -> fail line "memory location not allowed here (only one access per instruction)"

let binop_of_token ~line = function
  | "+" -> Instr.Add
  | "-" -> Instr.Sub
  | "*" -> Instr.Mul
  | t -> fail line "unknown operator %S" t

let parse_instruction_line ~line env s =
  let s = String.trim s in
  match s with
  | "fence.full" -> Instr.fence Fence.Full
  | "fence.acquire" -> Instr.fence Fence.Acquire
  | "fence.release" -> Instr.fence Fence.Release
  | _ ->
    (match tokens_of_line s with
     | [ dst; "="; src ] ->
       (match (operand_of_token ~line env dst, operand_of_token ~line env src) with
        | `Loc loc, (`Imm _ | `Reg _) ->
          Instr.store ~loc ~src:(instr_operand ~line (operand_of_token ~line env src))
        | `Reg reg, `Loc loc -> Instr.load ~reg ~loc
        | `Reg dst, ((`Imm _ | `Reg _) as src) ->
          (* register move: encode as dst := src + 0 *)
          Instr.binop ~dst Instr.Add (instr_operand ~line src) (Instr.Imm 0)
        | `Loc _, `Loc _ -> fail line "memory-to-memory moves are not instructions"
        | `Imm _, _ -> fail line "cannot assign to a constant")
     | [ dst; "="; "rmw"; loc; op; operand ] ->
       (match (operand_of_token ~line env dst, operand_of_token ~line env loc) with
        | `Reg reg, `Loc loc ->
          Instr.rmw ~reg ~loc (binop_of_token ~line op)
            (instr_operand ~line (operand_of_token ~line env operand))
        | _ -> fail line "rmw form is 'rN = rmw LOC OP OPERAND'")
     | [ dst; "="; a; op; b ] ->
       let binop = binop_of_token ~line op in
       (match operand_of_token ~line env dst with
        | `Reg reg ->
          let a = instr_operand ~line (operand_of_token ~line env a) in
          let b = instr_operand ~line (operand_of_token ~line env b) in
          Instr.binop ~dst:reg binop a b
        | `Loc _ | `Imm _ -> fail line "arithmetic destination must be a register")
     | _ -> fail line "cannot parse instruction %S" s)

let parse_instruction ~locations s =
  let env = env_create locations in
  parse_instruction_line ~line:0 env s

let split_key_value ~line s =
  match String.index_opt s ':' with
  | None -> fail line "expected 'key: value'"
  | Some i ->
    (String.trim (String.sub s 0 i), String.trim (String.sub s (i + 1) (String.length s - i - 1)))

let parse_observable ~line env tok =
  (* T:rN=int (register) or LOC=int (memory) *)
  match String.index_opt tok '=' with
  | None -> fail line "observable %S needs '=value'" tok
  | Some i ->
    let lhs = String.sub tok 0 i in
    let value =
      match int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1)) with
      | Some v -> v
      | None -> fail line "bad observable value in %S" tok
    in
    (match String.index_opt lhs ':' with
     | Some j ->
       let thread =
         match int_of_string_opt (String.sub lhs 0 j) with
         | Some t when t >= 0 -> t
         | _ -> fail line "bad thread index in %S" tok
       in
       (match register_of_string (String.sub lhs (j + 1) (String.length lhs - j - 1)) with
        | Some r -> (`Reg (thread, r), lhs, value)
        | None -> fail line "bad register in %S" tok)
     | None ->
       if is_location_name lhs then (`Mem (lookup_loc env lhs), lhs, value)
       else fail line "bad observable %S" tok)

let parse_with_locations text =
  let env = env_create [] in
  let name = ref None and description = ref "" in
  let init = ref [] and threads = ref [] and relaxed = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let s = String.trim s in
      if s <> "" then begin
        let key, value = split_key_value ~line s in
        match key with
        | "name" -> name := Some value
        | "description" -> description := value
        | "init" ->
          List.iter
            (fun tok ->
              match String.index_opt tok '=' with
              | None -> fail line "init binding %S needs '=value'" tok
              | Some j ->
                let loc_name = String.sub tok 0 j in
                if not (is_location_name loc_name) then fail line "bad location %S" loc_name;
                (match int_of_string_opt (String.sub tok (j + 1) (String.length tok - j - 1)) with
                 | Some v -> init := (lookup_loc env loc_name, v) :: !init
                 | None -> fail line "bad init value in %S" tok))
            (tokens_of_line value)
        | "thread" ->
          let instrs =
            String.split_on_char ';' value
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> List.map (parse_instruction_line ~line env)
          in
          if instrs = [] then fail line "empty thread";
          threads := Array.of_list instrs :: !threads
        | "relaxed" ->
          relaxed := List.map (parse_observable ~line env) (tokens_of_line value)
        | k -> fail line "unknown key %S" k
      end)
    lines;
  let name = match !name with Some n -> n | None -> fail 0 "missing 'name:'" in
  let programs = List.rev !threads in
  if programs = [] then fail 0 "no threads";
  let relaxed = !relaxed in
  if relaxed = [] then fail 0 "missing 'relaxed:'";
  let observe st =
    List.sort compare
      (List.map
         (fun (what, label, _) ->
           match what with
           | `Reg (t, r) ->
             if t >= Array.length st.State.threads then fail 0 "observable thread out of range";
             (label, State.reg st.State.threads.(t) r)
           | `Mem loc -> (label, State.mem_read st loc))
         relaxed)
  in
  let relaxed_outcome = List.sort compare (List.map (fun (_, label, v) -> (label, v)) relaxed) in
  let test =
    {
      Litmus.name;
      description = (if !description = "" then "(parsed litmus test)" else !description);
      programs;
      initial_mem = List.rev !init;
      observe;
      relaxed_outcome;
      allowed_under = (fun _ -> true);
    }
  in
  (test, env_locations env)

let parse text = fst (parse_with_locations text)
