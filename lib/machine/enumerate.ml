module IntMap = State.IntMap

type stats = {
  elapsed_s : float;
  states_per_sec : float;
  transitions : int;
  dedup_hits : int;
  max_depth : int;
  max_frontier : int;
  por_ample_states : int;
  por_pruned : int;
}

type 'a result = {
  outcomes : ('a * int) list;
  states_visited : int;
  terminals : int;
  stats : stats;
  exhausted : Memrel_prob.Budget.exhaustion option;
}

exception State_limit of { max_states : int; states_visited : int; terminals : int }

(* -- partial-order reduction (ample sets) ------------------------------

   At each state we try to pick ONE thread and explore only its enabled
   transitions. The choice is sound (an ample/persistent set) when every
   enabled transition of the chosen thread is independent — now and along
   any future execution — of everything the OTHER threads can ever do.
   Because a thread's enabledness depends only on its own context, and the
   shared locations a thread can still touch only shrink over time (the
   "remaining footprint": locations of unexecuted instructions plus
   buffered stores), a static check against the other threads' current
   remaining footprints suffices. The transition graph is acyclic (each
   step either executes an instruction or drains a buffer entry), so
   persistent sets preserve every reachable terminal state — hence the
   exact outcome sets and terminal counts. See DESIGN.md §8. *)

type effect_ = Local | Read of int | Write of int

(* the shared-memory effect of one enabled transition. Under the buffered
   disciplines (TSO/PSO) executing a store only appends to the thread's own
   buffer — the globally visible write is the later Flush. *)
let transition_effect ~buffered th = function
  | Semantics.Flush { loc; _ } -> Write loc
  | Semantics.Exec { index; _ } ->
    (match th.State.prog.(index) with
     | Instr.Binop _ | Instr.Fence _ -> Local
     | Instr.Load { loc; _ } -> Read loc
     | Instr.Store { loc; _ } -> if buffered then Local else Write loc
     | Instr.Rmw { loc; _ } -> Write loc)

(* footprints are bitmasks over locations; fall back to no reduction when a
   location does not fit the word *)
exception Unmaskable

let max_mask_loc = Sys.int_size - 2

let thread_footprint th =
  let all = ref 0 and writes = ref 0 in
  let add m l =
    if l < 0 || l > max_mask_loc then raise Unmaskable else m := !m lor (1 lsl l)
  in
  Array.iteri
    (fun i ins ->
      if not (State.is_executed th i) then begin
        match Instr.loc_accessed ins with
        | None -> ()
        | Some l ->
          add all l;
          if Instr.is_store ins then add writes l
      end)
    th.State.prog;
  List.iter (fun (l, _) -> add all l; add writes l) th.State.fifo;
  IntMap.iter (fun l q -> if q <> [] then (add all l; add writes l)) th.State.perloc;
  (!all, !writes)

let select_ample ~buffered st per_thread =
  match Array.map thread_footprint st.State.threads with
  | exception Unmaskable -> None
  | fp ->
    let n = Array.length per_thread in
    let rec go k =
      if k >= n then None
      else if per_thread.(k) = [] then go (k + 1)
      else begin
        let others_all = ref 0 and others_writes = ref 0 in
        for j = 0 to n - 1 do
          if j <> k then begin
            others_all := !others_all lor fst fp.(j);
            others_writes := !others_writes lor snd fp.(j)
          end
        done;
        let th = st.State.threads.(k) in
        let independent (label, _) =
          match transition_effect ~buffered th label with
          | Local -> true
          | Read l -> !others_writes land (1 lsl l) = 0
          | Write l -> !others_all land (1 lsl l) = 0
        in
        if List.for_all independent per_thread.(k) then Some k else go (k + 1)
      end
    in
    go 0

(* -- shared successor expansion ----------------------------------------

   One expansion function for both engines (the in-RAM worklist below and
   the external-memory BFS in [Extmem]): the POR choice is a deterministic
   function of the state alone, so the two engines explore the same reduced
   graph regardless of traversal order. *)

let buffered_of = function
  | Semantics.Tso | Semantics.Pso -> true
  | Semantics.Sc | Semantics.Wo _ -> false

let expand ~por discipline st =
  if not por then (Semantics.transitions discipline st, 0)
  else begin
    let per_thread =
      Array.init (Array.length st.State.threads) (Semantics.thread_transitions discipline st)
    in
    match select_ample ~buffered:(buffered_of discipline) st per_thread with
    | Some k ->
      let total = Array.fold_left (fun acc l -> acc + List.length l) 0 per_thread in
      let chosen = per_thread.(k) in
      (chosen, total - List.length chosen)
    | None -> (Array.fold_right (fun l acc -> l @ acc) per_thread [], 0)
  end

(* -- iterative exploration --------------------------------------------- *)

let outcomes ?(max_states = 2_000_000) ?(por = false) ?(legacy_key = false) ?budget
    ?(legacy_raise = false) discipline st ~observe =
  let scratch = Buffer.create 128 in
  let key st =
    if legacy_key then State.key st
    else begin
      Buffer.clear scratch;
      State.add_packed scratch st;
      Buffer.contents scratch
    end
  in
  let visited = Hashtbl.create 4096 in
  let outcome_counts = Hashtbl.create 64 in
  let terminals = ref 0 in
  let expanded = ref 0 in
  let transitions = ref 0 and dedup_hits = ref 0 in
  let max_depth = ref 0 and max_frontier = ref 0 in
  let por_ample_states = ref 0 and por_pruned = ref 0 in
  let t0 = Unix.gettimeofday () in
  (* explicit worklist: depth bounded only by the heap, never the OCaml
     stack. States are marked visited when pushed (for deduplication) and
     counted — for the cap, the budget and the stats — when popped and
     expanded: a state sitting on the stack is in flight, not yet visited,
     so the cap can never fire while unexplored unique states would be
     abandoned below it. *)
  let stack = Stack.create () in
  (* every stop — state cap, deadline, work cap, memory watermark — unwinds
     through one path and yields a partial result (the legacy exception is
     kept behind [legacy_raise] only) *)
  let exception Stop of Memrel_prob.Budget.cause in
  let visit st depth =
    let k = key st in
    if Hashtbl.mem visited k then incr dedup_hits
    else begin
      Hashtbl.add visited k ();
      Stack.push (st, depth) stack
    end
  in
  let successors st =
    let ts, pruned = expand ~por discipline st in
    if pruned > 0 then begin
      incr por_ample_states;
      por_pruned := !por_pruned + pruned
    end;
    ts
  in
  let exhausted = ref None in
  (try
     visit st 0;
     while not (Stack.is_empty stack) do
       let st, depth = Stack.pop stack in
       if !expanded >= max_states then begin
         if legacy_raise then
           raise
             (State_limit
                { max_states; states_visited = !expanded; terminals = !terminals });
         raise (Stop Memrel_prob.Budget.Work)
       end;
       (match budget with
        | None -> ()
        | Some b -> (
          match Memrel_prob.Budget.check b with
          | Some cause -> raise (Stop cause)
          | None -> Memrel_prob.Budget.spend b 1));
       incr expanded;
       if depth > !max_depth then max_depth := depth;
       match successors st with
       | [] ->
         incr terminals;
         let o = observe st in
         Hashtbl.replace outcome_counts o
           (1 + Option.value ~default:0 (Hashtbl.find_opt outcome_counts o))
       | ts ->
         List.iter
           (fun (_, st') ->
             incr transitions;
             visit st' (depth + 1))
           ts;
         let frontier = Stack.length stack in
         if frontier > !max_frontier then max_frontier := frontier
     done
   with Stop cause ->
     exhausted :=
       Some
         (match budget with
          | Some b -> Memrel_prob.Budget.exhaustion b cause
          | None ->
            (* the state cap tripped without a budget: synthesize the same
               record, counting expanded states as work *)
            {
              Memrel_prob.Budget.cause;
              work_done = !expanded;
              elapsed_s = Unix.gettimeofday () -. t0;
            }));
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let states_visited = !expanded in
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcome_counts [] in
  {
    outcomes = List.sort compare l;
    states_visited;
    terminals = !terminals;
    stats =
      {
        elapsed_s;
        states_per_sec =
          (if elapsed_s > 0.0 then float_of_int states_visited /. elapsed_s else 0.0);
        transitions = !transitions;
        dedup_hits = !dedup_hits;
        max_depth = !max_depth;
        max_frontier = !max_frontier;
        por_ample_states = !por_ample_states;
        por_pruned = !por_pruned;
      };
    exhausted = !exhausted;
  }

let outcome_set r = List.map fst r.outcomes

let reachable_terminal_count ?max_states ?por discipline st =
  (outcomes ?max_states ?por discipline st ~observe:(fun s -> State.packed_key s)).terminals
