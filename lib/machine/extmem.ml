module Budget = Memrel_prob.Budget
module Snapshot = Memrel_prob.Snapshot

exception Spill_error of string

let spill_error fmt = Printf.ksprintf (fun m -> raise (Spill_error m)) fmt

let run_tag = "extmem/run"
let manifest_tag = "extmem/manifest"
let manifest_file = "MANIFEST"
let merge_fan_in = 8
let compact_threshold = 24

type ext_stats = {
  levels : int;
  spill_runs : int;
  spill_bytes : int;
  spill_generations : int;
  bloom_probes : int;
  bloom_hits : int;
  bloom_false_positives : int;
  compactions : int;
  peak_level_states : int;
  resumed_at_level : int option;
}

type 'a result = { base : 'a Enumerate.result; ext : ext_stats }

(* -- engine state -------------------------------------------------------

   A logical run ("lrun") is an ordered list of file names whose
   concatenated decoded key streams form one sorted, duplicate-free
   sequence. [visited] is a list of lruns (newest first; its head is the
   current frontier's lrun whenever the frontier is non-empty); their union
   is exactly the set of states admitted so far. *)

type 'a eng = {
  dir : string;
  resume_key : string;
  run_cap : int;  (* payload bytes per run file / per in-RAM batch *)
  bloom : Bytes.t;
  bloom_bits : int;
  programs : Instr.t array list;
  discipline : Semantics.discipline;
  por : bool;
  outcome_counts : ('a, int) Hashtbl.t;
  mutable visited : string list list;
  mutable frontier : string list;
  mutable file_seq : int;
  mutable level : int;  (* BFS depth of the states now in [frontier] *)
  mutable deepest : int;  (* deepest level actually expanded *)
  mutable expanded : int;
  mutable terminals : int;
  mutable transitions : int;
  mutable dedup_hits : int;
  mutable frontier_states : int;
  mutable max_level_states : int;
  mutable por_ample_states : int;
  mutable por_pruned : int;
  mutable spill_runs : int;
  mutable spill_bytes : int;
  mutable spill_generations : int;
  mutable bloom_probes : int;
  mutable bloom_hits : int;
  mutable bloom_fp : int;
  mutable compactions : int;
  mutable gc_grace_level : int;
  mutable resumed_at : int option;
}

let alloc_file eng =
  let name = Printf.sprintf "r%06d.run" eng.file_seq in
  eng.file_seq <- eng.file_seq + 1;
  name

let delete_files eng files =
  List.iter
    (fun f -> try Sys.remove (Filename.concat eng.dir f) with Sys_error _ -> ())
    files

(* -- bloom filter front -------------------------------------------------

   Double hashing over two FNV-1a-style 62-bit hashes, k = 4 probes. A
   negative answer is definitive (the key was never inserted), so most new
   states skip the disk probe entirely; a positive answer is resolved
   against the on-disk visited runs. Sized at mem_budget/4 bytes. *)

let bloom_k = 4

let hash_string seed s =
  let h = ref (seed lxor 0x3f29ce484222325) in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  let x = !h lxor (!h lsr 29) in
  (x * 0x100000001b3) land max_int

let bloom_probe eng key f =
  let h1 = hash_string 0 key and h2 = hash_string 1 key lor 1 in
  let ok = ref true in
  for i = 0 to bloom_k - 1 do
    if !ok then begin
      let bit = (h1 + (i * h2)) land max_int mod eng.bloom_bits in
      if not (f (bit lsr 3) (1 lsl (bit land 7))) then ok := false
    end
  done;
  !ok

let bloom_member eng key =
  bloom_probe eng key (fun byte mask -> Char.code (Bytes.unsafe_get eng.bloom byte) land mask <> 0)

let bloom_insert eng key =
  ignore
    (bloom_probe eng key (fun byte mask ->
         Bytes.unsafe_set eng.bloom byte
           (Char.unsafe_chr (Char.code (Bytes.unsafe_get eng.bloom byte) lor mask));
         true))

(* -- run codec ----------------------------------------------------------

   A run file is a Snapshot container (tag "extmem/run", tmp+rename atomic,
   CRC-32 validated on read) whose payload is:

     uvarint key-count, then per key:
       uvarint shared-prefix-len (with the previous key in this file)
       uvarint suffix-len
       suffix bytes

   Keys are sorted, so consecutive packed state keys share long prefixes
   and the delta encoding compresses them well. Plain unsigned varints
   frame the payload (the zigzag form in State is for signed values). *)

let add_uvarint buf n =
  let u = ref n in
  while !u land lnot 0x7f <> 0 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!u land 0x7f)));
    u := !u lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !u)

type cursor = { src : string; ctx : string; mutable p : int }

let cursor ~ctx src = { src; ctx; p = 0 }

let cur_uvarint c =
  let u = ref 0 and shift = ref 0 and again = ref true in
  while !again do
    if c.p >= String.length c.src || !shift > Sys.int_size - 7 then
      spill_error "%s: truncated or overlong varint" c.ctx;
    let b = Char.code (String.unsafe_get c.src c.p) in
    c.p <- c.p + 1;
    u := !u lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then again := false
  done;
  !u

let cur_string c =
  let n = cur_uvarint c in
  if c.p + n > String.length c.src then spill_error "%s: truncated string" c.ctx;
  let s = String.sub c.src c.p n in
  c.p <- c.p + n;
  s

(* streaming reader over a logical run *)
type reader = {
  rdir : string;
  mutable rfiles : string list;
  mutable rcur : cursor;
  mutable rremaining : int;
  mutable rprev : string;
}

let reader_open eng lrun =
  { rdir = eng.dir; rfiles = lrun; rcur = cursor ~ctx:"" ""; rremaining = 0; rprev = "" }

let rec reader_next r =
  if r.rremaining > 0 then begin
    let c = r.rcur in
    let plen = cur_uvarint c in
    let slen = cur_uvarint c in
    if plen > String.length r.rprev || c.p + slen > String.length c.src then
      spill_error "%s: corrupt delta entry" c.ctx;
    let key = String.sub r.rprev 0 plen ^ String.sub c.src c.p slen in
    c.p <- c.p + slen;
    r.rremaining <- r.rremaining - 1;
    r.rprev <- key;
    Some key
  end
  else
    match r.rfiles with
    | [] -> None
    | f :: rest ->
      r.rfiles <- rest;
      (match Snapshot.read ~file:(Filename.concat r.rdir f) ~tag:run_tag with
       | Error e -> spill_error "spill run %s: %s" f (Snapshot.error_to_string e)
       | Ok payload ->
         r.rcur <- cursor ~ctx:("spill run " ^ f) payload;
         r.rprev <- "";
         r.rremaining <- cur_uvarint r.rcur;
         reader_next r)

(* chunked writer: emits a new file whenever the encoded payload reaches
   the cap, so a single logical run never needs more than one file of
   payload in RAM at a time *)
type writer = {
  weng : unit -> string;  (* allocate a file name *)
  wdir : string;
  wcap : int;
  wrecord : int -> unit;
  mutable wfiles : string list;  (* reverse order *)
  wbuf : Buffer.t;
  mutable wprev : string;
  mutable wcount : int;
}

let writer_make eng ~cap =
  {
    weng = (fun () -> alloc_file eng);
    wdir = eng.dir;
    wcap = cap;
    wrecord =
      (fun bytes ->
        eng.spill_runs <- eng.spill_runs + 1;
        eng.spill_bytes <- eng.spill_bytes + bytes);
    wfiles = [];
    wbuf = Buffer.create 65536;
    wprev = "";
    wcount = 0;
  }

let writer_flush w =
  if w.wcount > 0 then begin
    let payload = Buffer.create (Buffer.length w.wbuf + 10) in
    add_uvarint payload w.wcount;
    Buffer.add_buffer payload w.wbuf;
    let name = w.weng () in
    (match
       Snapshot.write ~file:(Filename.concat w.wdir name) ~tag:run_tag
         (Buffer.contents payload)
     with
     | Ok () -> ()
     | Error e -> spill_error "cannot write spill run %s: %s" name (Snapshot.error_to_string e));
    w.wrecord (Buffer.length payload);
    w.wfiles <- name :: w.wfiles;
    Buffer.clear w.wbuf;
    w.wprev <- "";
    w.wcount <- 0
  end

let writer_add w key =
  let n = min (String.length key) (String.length w.wprev) in
  let rec common i = if i < n && key.[i] = w.wprev.[i] then common (i + 1) else i in
  let p = common 0 in
  add_uvarint w.wbuf p;
  add_uvarint w.wbuf (String.length key - p);
  Buffer.add_substring w.wbuf key p (String.length key - p);
  w.wprev <- key;
  w.wcount <- w.wcount + 1;
  if Buffer.length w.wbuf >= w.wcap then writer_flush w

let writer_finish w =
  writer_flush w;
  List.rev w.wfiles

(* -- k-way merge --------------------------------------------------------

   Merges sorted-unique logical runs into one sorted stream, emitting each
   distinct key once. Fan-in is capped at [merge_fan_in]; wider merges go
   through [reduce_fan_in], which folds batches into intermediate lruns
   first (hierarchical merge). *)

let merge_readers readers ~emit =
  let cur = Array.map reader_next readers in
  let rec loop () =
    let min_key = ref None in
    Array.iter
      (fun c ->
        match c with
        | None -> ()
        | Some k -> (
          match !min_key with
          | Some mk when String.compare mk k <= 0 -> ()
          | _ -> min_key := Some k))
      cur;
    match !min_key with
    | None -> ()
    | Some k ->
      Array.iteri
        (fun i c ->
          match c with
          | Some k' when String.equal k' k -> cur.(i) <- reader_next readers.(i)
          | _ -> ())
        cur;
      emit k;
      loop ()
  in
  loop ()

let merge_lruns eng lruns ~emit =
  merge_readers (Array.of_list (List.map (reader_open eng) lruns)) ~emit

let rec take n = function
  | [] -> ([], [])
  | l when n = 0 -> ([], l)
  | x :: rest ->
    let a, b = take (n - 1) rest in
    (x :: a, b)

(* [defer]: during compaction the inputs are referenced by the current
   manifest, so their deletion is deferred until the next manifest is on
   disk — a crash mid-compaction then leaves only orphans (cleaned on
   resume), never a manifest pointing at deleted runs. *)
let rec reduce_fan_in eng ?defer lruns =
  if List.length lruns <= merge_fan_in then lruns
  else begin
    let batch, rest = take merge_fan_in lruns in
    let w = writer_make eng ~cap:eng.run_cap in
    merge_lruns eng batch ~emit:(writer_add w);
    let merged = writer_finish w in
    (match defer with
     | Some acc -> acc := List.concat batch @ !acc
     | None -> List.iter (delete_files eng) batch);
    reduce_fan_in eng ?defer (rest @ [ merged ])
  end

let merge_to_one eng ?defer lruns =
  match reduce_fan_in eng ?defer lruns with
  | [] -> []
  | [ one ] -> one
  | several ->
    let w = writer_make eng ~cap:eng.run_cap in
    merge_lruns eng several ~emit:(writer_add w);
    let merged = writer_finish w in
    (match defer with
     | Some acc -> acc := List.concat several @ !acc
     | None -> List.iter (delete_files eng) several);
    merged

(* -- manifest -----------------------------------------------------------

   One per-level checkpoint (tag "extmem/manifest"), atomically replaced
   after each completed level: the resume key, every counter, the visited
   and frontier lrun file lists, and the outcome table. No mid-level
   manifests exist, so a resume always restarts at the last complete level
   and replays deterministically — bit-identical to an uninterrupted run. *)

let write_manifest eng =
  (* a named kill-at-a-seam drill point: chaos plans can kill the run at
     the exact instant before a level commits, proving resume replays the
     level rather than trusting half-committed state *)
  Memrel_prob.Faultio.crash_site "extmem/manifest";
  let b = Buffer.create 4096 in
  let str s =
    add_uvarint b (String.length s);
    Buffer.add_string b s
  in
  str eng.resume_key;
  List.iter (add_uvarint b)
    [
      eng.file_seq; eng.level; eng.deepest; eng.expanded; eng.terminals; eng.transitions;
      eng.dedup_hits; eng.frontier_states; eng.max_level_states; eng.por_ample_states;
      eng.por_pruned; eng.spill_runs; eng.spill_bytes; eng.spill_generations;
      eng.bloom_probes; eng.bloom_hits; eng.bloom_fp; eng.compactions;
    ];
  let lrun l =
    add_uvarint b (List.length l);
    List.iter str l
  in
  add_uvarint b (List.length eng.visited);
  List.iter lrun eng.visited;
  lrun eng.frontier;
  let outcomes =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) eng.outcome_counts [])
  in
  str (Marshal.to_string outcomes []);
  match
    Snapshot.write ~file:(Filename.concat eng.dir manifest_file) ~tag:manifest_tag
      (Buffer.contents b)
  with
  | Ok () -> ()
  | Error e -> spill_error "cannot write manifest: %s" (Snapshot.error_to_string e)

let load_manifest eng =
  let path = Filename.concat eng.dir manifest_file in
  if not (Sys.file_exists path) then
    spill_error "no manifest to resume from in %s" eng.dir;
  match Snapshot.read ~file:path ~tag:manifest_tag with
  | Error e -> spill_error "manifest: %s" (Snapshot.error_to_string e)
  | Ok payload ->
    let c = cursor ~ctx:"manifest" payload in
    let found_key = cur_string c in
    if not (String.equal found_key eng.resume_key) then
      spill_error
        "spill directory %s belongs to a different enumeration (resume key %S, expected %S)"
        eng.dir found_key eng.resume_key;
    eng.file_seq <- cur_uvarint c;
    eng.level <- cur_uvarint c;
    eng.deepest <- cur_uvarint c;
    eng.expanded <- cur_uvarint c;
    eng.terminals <- cur_uvarint c;
    eng.transitions <- cur_uvarint c;
    eng.dedup_hits <- cur_uvarint c;
    eng.frontier_states <- cur_uvarint c;
    eng.max_level_states <- cur_uvarint c;
    eng.por_ample_states <- cur_uvarint c;
    eng.por_pruned <- cur_uvarint c;
    eng.spill_runs <- cur_uvarint c;
    eng.spill_bytes <- cur_uvarint c;
    eng.spill_generations <- cur_uvarint c;
    eng.bloom_probes <- cur_uvarint c;
    eng.bloom_hits <- cur_uvarint c;
    eng.bloom_fp <- cur_uvarint c;
    eng.compactions <- cur_uvarint c;
    let lrun () =
      let n = cur_uvarint c in
      List.init n (fun _ -> cur_string c)
    in
    let nvisited = cur_uvarint c in
    eng.visited <- List.init nvisited (fun _ -> lrun ());
    eng.frontier <- lrun ();
    let blob = cur_string c in
    if c.p <> String.length payload then spill_error "manifest: trailing bytes";
    let outcomes =
      try (Marshal.from_string blob 0 : ('a * int) list)
      with _ -> spill_error "manifest: corrupt outcome table"
    in
    Hashtbl.reset eng.outcome_counts;
    List.iter (fun (o, n) -> Hashtbl.replace eng.outcome_counts o n) outcomes

let clean_dir eng ~keep =
  let keep_set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace keep_set f ()) keep;
  match Sys.readdir eng.dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun f ->
        if
          (Filename.check_suffix f ".run" || Filename.check_suffix f ".tmp"
          || String.equal f manifest_file)
          && not (Hashtbl.mem keep_set f)
        then try Sys.remove (Filename.concat eng.dir f) with Sys_error _ -> ())
      entries

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* -- level expansion ----------------------------------------------------

   Every transition executes one instruction or drains one buffer entry,
   so each state sits at exactly one BFS depth: levels partition the state
   space, and the level-synchronized traversal expands each state exactly
   once — the same reduced graph as the in-RAM worklist (the POR choice is
   a per-state function; see Enumerate.expand). *)

exception Stop of Budget.cause

let budget_check eng budget =
  match budget with
  | None -> None
  | Some b -> (
    match Budget.check b with
    | Some Budget.Memory when eng.gc_grace_level <> eng.level ->
      (* a watermark trip may be transient garbage: compact the heap once
         per level and re-check before declaring the budget exhausted
         (the watermark reads Gc heap_words, which full_major alone never
         lowers; Gc.compact shrinks it where the runtime supports heap
         compaction, and elsewhere — OCaml 5.0/5.1 — still frees every
         dead block for reuse, keeping heap_words at the live peak instead
         of compounding per level) *)
      eng.gc_grace_level <- eng.level;
      Gc.compact ();
      Budget.check b
    | r -> r)

let expand_level eng ~observe ~max_states ~budget =
  eng.deepest <- eng.level;
  let cand_lruns = ref [] in
  let cand = ref [] and cand_bytes = ref 0 and cand_total = ref 0 in
  let spill ~forced =
    if !cand <> [] then begin
      if forced then eng.spill_generations <- eng.spill_generations + 1;
      let w = writer_make eng ~cap:max_int in
      List.iter (writer_add w) (List.sort_uniq String.compare !cand);
      cand_lruns := writer_finish w :: !cand_lruns;
      cand := [];
      cand_bytes := 0
    end
  in
  let r = reader_open eng eng.frontier in
  let rec go () =
    match reader_next r with
    | None -> ()
    | Some key ->
      if eng.expanded >= max_states then raise (Stop Budget.Work);
      (match budget_check eng budget with
       | Some cause -> raise (Stop cause)
       | None -> ( match budget with None -> () | Some b -> Budget.spend b 1));
      eng.expanded <- eng.expanded + 1;
      let st =
        try State.of_packed_key ~programs:eng.programs key
        with Invalid_argument _ -> spill_error "corrupt state key in spill run"
      in
      let succs, pruned = Enumerate.expand ~por:eng.por eng.discipline st in
      if pruned > 0 then begin
        eng.por_ample_states <- eng.por_ample_states + 1;
        eng.por_pruned <- eng.por_pruned + pruned
      end;
      (match succs with
       | [] ->
         eng.terminals <- eng.terminals + 1;
         let o = observe st in
         Hashtbl.replace eng.outcome_counts o
           (1 + Option.value ~default:0 (Hashtbl.find_opt eng.outcome_counts o))
       | ts ->
         List.iter
           (fun (_, st') ->
             eng.transitions <- eng.transitions + 1;
             let k = State.packed_key st' in
             cand := k :: !cand;
             incr cand_total;
             cand_bytes := !cand_bytes + String.length k + 16;
             if !cand_bytes >= eng.run_cap then spill ~forced:true)
           ts);
      go ()
  in
  go ();
  spill ~forced:false;
  (List.rev !cand_lruns, !cand_total)

(* resolve a sorted batch of bloom-positive keys against one visited lrun
   (two-pointer scan); keys actually present are recorded in [seen] *)
let resolve_against eng lrun batch seen =
  let n = Array.length batch in
  if n > 0 then begin
    let r = reader_open eng lrun in
    let i = ref 0 in
    let rec go () =
      match reader_next r with
      | None -> ()
      | Some k ->
        while !i < n && String.compare batch.(!i) k < 0 do
          incr i
        done;
        if !i < n then begin
          if String.equal batch.(!i) k then begin
            Hashtbl.replace seen batch.(!i) ();
            incr i
          end;
          go ()
        end
    in
    go ()
  end

(* duplicate detection for one level: merge the candidate runs (collapsing
   in-level duplicates), screen each distinct key through the bloom filter,
   and resolve the positives against the visited runs in batches. When no
   key was actually seen before (the common case: levels partition the
   state space, so cross-level duplicates are impossible here and every
   bloom hit is a false positive) the pending run becomes the next frontier
   as-is; otherwise it is rewritten without the seen keys. *)
let dedup_level eng cand_lruns cand_total =
  let pending = writer_make eng ~cap:eng.run_cap in
  let unique = ref 0 in
  let hits = ref [] and hits_bytes = ref 0 and hits_level = ref 0 in
  let seen = Hashtbl.create 16 in
  let resolve () =
    if !hits <> [] then begin
      let batch = Array.of_list (List.rev !hits) in
      List.iter (fun lrun -> resolve_against eng lrun batch seen) eng.visited;
      hits := [];
      hits_bytes := 0
    end
  in
  let lruns = reduce_fan_in eng cand_lruns in
  if lruns <> [] then
    merge_lruns eng lruns ~emit:(fun k ->
        incr unique;
        eng.bloom_probes <- eng.bloom_probes + 1;
        if bloom_member eng k then begin
          eng.bloom_hits <- eng.bloom_hits + 1;
          incr hits_level;
          hits := k :: !hits;
          hits_bytes := !hits_bytes + String.length k + 16;
          if !hits_bytes >= eng.run_cap then resolve ()
        end;
        bloom_insert eng k;
        writer_add pending k);
  resolve ();
  let pending_files = writer_finish pending in
  let seen_n = Hashtbl.length seen in
  eng.bloom_fp <- eng.bloom_fp + (!hits_level - seen_n);
  (* every duplicate drop — intra-batch sort_uniq, the merge collapse, and
     the visited probe — lands in this one formula *)
  eng.dedup_hits <- eng.dedup_hits + (cand_total - !unique) + seen_n;
  let new_states = !unique - seen_n in
  let next_frontier =
    if seen_n = 0 then pending_files
    else begin
      let w = writer_make eng ~cap:eng.run_cap in
      let r = reader_open eng pending_files in
      let rec go () =
        match reader_next r with
        | None -> ()
        | Some k ->
          if not (Hashtbl.mem seen k) then writer_add w k;
          go ()
      in
      go ();
      let files = writer_finish w in
      delete_files eng pending_files;
      files
    end
  in
  List.iter (delete_files eng) lruns;
  eng.frontier_states <- new_states;
  eng.level <- eng.level + 1;
  if new_states = 0 then begin
    delete_files eng next_frontier;
    eng.frontier <- []
  end
  else begin
    eng.frontier <- next_frontier;
    eng.visited <- next_frontier :: eng.visited;
    if new_states > eng.max_level_states then eng.max_level_states <- new_states
  end;
  new_states

let maybe_compact eng =
  match eng.visited with
  | front :: rest when List.length rest > compact_threshold ->
    eng.compactions <- eng.compactions + 1;
    let defer = ref [] in
    let merged = merge_to_one eng ~defer rest in
    eng.visited <- [ front; merged ];
    !defer
  | _ -> []

(* -- driver ------------------------------------------------------------- *)

let default_mem_budget = 64 * 1024 * 1024

let create_eng ~spill_dir ~resume_key ~mem_budget_bytes ~por ~programs discipline =
  let mem_budget = max 65536 mem_budget_bytes in
  let bloom_bytes = max 4096 (min (mem_budget / 4) (1 lsl 28)) in
  {
    dir = spill_dir;
    resume_key;
    run_cap = max 4096 (mem_budget / 8);
    bloom = Bytes.make bloom_bytes '\000';
    bloom_bits = bloom_bytes * 8;
    programs;
    discipline;
    por;
    outcome_counts = Hashtbl.create 64;
    visited = [];
    frontier = [];
    file_seq = 0;
    level = 0;
    deepest = 0;
    expanded = 0;
    terminals = 0;
    transitions = 0;
    dedup_hits = 0;
    frontier_states = 0;
    max_level_states = 0;
    por_ample_states = 0;
    por_pruned = 0;
    spill_runs = 0;
    spill_bytes = 0;
    spill_generations = 0;
    bloom_probes = 0;
    bloom_hits = 0;
    bloom_fp = 0;
    compactions = 0;
    gc_grace_level = -1;
    resumed_at = None;
  }

let init_fresh eng root =
  mkdir_p eng.dir;
  clean_dir eng ~keep:[];
  let root_key = State.packed_key root in
  bloom_insert eng root_key;
  let w = writer_make eng ~cap:eng.run_cap in
  writer_add w root_key;
  let lrun = writer_finish w in
  eng.frontier <- lrun;
  eng.visited <- [ lrun ];
  eng.frontier_states <- 1;
  eng.max_level_states <- 1;
  write_manifest eng

let init_resume eng =
  load_manifest eng;
  (* rebuild the bloom filter by streaming every visited run — this also
     CRC-validates each file, so truncated or corrupt spill state surfaces
     here as a typed Spill_error instead of a silently wrong resume *)
  let total = ref 0 in
  List.iter
    (fun lrun ->
      let r = reader_open eng lrun in
      let rec go () =
        match reader_next r with
        | None -> ()
        | Some k ->
          bloom_insert eng k;
          incr total;
          go ()
      in
      go ())
    eng.visited;
  if !total <> eng.expanded + eng.frontier_states then
    spill_error "inconsistent spill directory: %d visited keys on disk, manifest expects %d"
      !total
      (eng.expanded + eng.frontier_states);
  clean_dir eng ~keep:(manifest_file :: List.concat (eng.frontier :: eng.visited));
  eng.resumed_at <- Some eng.level

let outcomes ?(max_states = max_int) ?(por = false) ?budget
    ?(mem_budget_bytes = default_mem_budget) ?(resume = false) ~spill_dir ~resume_key
    discipline root ~observe =
  let programs = Array.to_list (Array.map (fun th -> th.State.prog) root.State.threads) in
  let eng = create_eng ~spill_dir ~resume_key ~mem_budget_bytes ~por ~programs discipline in
  let t0 = Unix.gettimeofday () in
  if resume then init_resume eng else init_fresh eng root;
  let exhausted = ref None in
  (try
     while eng.frontier <> [] do
       let cand_lruns, cand_total = expand_level eng ~observe ~max_states ~budget in
       ignore (dedup_level eng cand_lruns cand_total);
       let deferred = maybe_compact eng in
       write_manifest eng;
       delete_files eng deferred;
       (* hold the heap near its live size so a Budget memory watermark
          measures the engine's true footprint, not transient level
          garbage; where the runtime compacts (5.2+) this also shrinks
          the watermark's heap_words reading, and on non-compacting
          runtimes it caps heap growth at the per-level live peak *)
       Gc.compact ()
     done
   with Stop cause ->
     exhausted :=
       Some
         (match budget with
          | Some b -> Budget.exhaustion b cause
          | None ->
            {
              Budget.cause;
              work_done = eng.expanded;
              elapsed_s = Unix.gettimeofday () -. t0;
            }));
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) eng.outcome_counts [] in
  let base =
    {
      Enumerate.outcomes = List.sort compare l;
      states_visited = eng.expanded;
      terminals = eng.terminals;
      stats =
        {
          Enumerate.elapsed_s;
          states_per_sec =
            (if elapsed_s > 0.0 then float_of_int eng.expanded /. elapsed_s else 0.0);
          transitions = eng.transitions;
          dedup_hits = eng.dedup_hits;
          max_depth = eng.deepest;
          max_frontier = eng.max_level_states;
          por_ample_states = eng.por_ample_states;
          por_pruned = eng.por_pruned;
        };
      exhausted = !exhausted;
    }
  in
  {
    base;
    ext =
      {
        levels = eng.level;
        spill_runs = eng.spill_runs;
        spill_bytes = eng.spill_bytes;
        spill_generations = eng.spill_generations;
        bloom_probes = eng.bloom_probes;
        bloom_hits = eng.bloom_hits;
        bloom_false_positives = eng.bloom_fp;
        compactions = eng.compactions;
        peak_level_states = eng.max_level_states;
        resumed_at_level = eng.resumed_at;
      };
  }

let can_resume dir = Sys.file_exists (Filename.concat dir manifest_file)

let remove_spill_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun f ->
        if
          Filename.check_suffix f ".run" || Filename.check_suffix f ".tmp"
          || String.equal f manifest_file
        then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      entries;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())
