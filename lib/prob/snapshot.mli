(** Versioned, CRC-guarded, atomically written snapshot files.

    The container format under every checkpoint in memrel (see
    [Par.run_governed]). A snapshot is a single binary file:

    {v
      offset  size  field
      0       8     magic "MRELSNAP"
      8       4     format version, big-endian u32 (currently 1)
      12      2     tag length, big-endian u16
      14      n     tag (engine identifier, e.g. "par/chunks")
      14+n    8     payload length, big-endian u64
      22+n    4     CRC-32 (IEEE 802.3) of the payload, big-endian u32
      26+n    *     payload bytes
    v}

    Writes go to [file ^ ".tmp"] and are renamed into place, so a crash
    mid-write leaves either the previous snapshot or none — never a torn
    one. Reads validate magic, version, tag, length and CRC before handing
    the payload back, so truncated, corrupted, foreign or stale-format files
    are rejected with a typed {!error} instead of being decoded. The payload
    itself is opaque to this module (engines marshal their own state into
    it; the tag is what keeps one engine from decoding another's bytes). *)

val current_version : int

type error =
  | Io of string  (** open/read/write/rename failure, with the message *)
  | Not_a_snapshot  (** too short for a header, or wrong magic *)
  | Version_mismatch of { expected : int; found : int }
  | Tag_mismatch of { expected : string; found : string }
  | Truncated  (** declared payload length exceeds the bytes present *)
  | Crc_mismatch  (** payload bytes fail the checksum *)

val error_to_string : error -> string

val write : file:string -> tag:string -> string -> (unit, error) result
(** [write ~file ~tag payload] writes atomically (tmp + rename). The tag
    must fit a u16 length ([Invalid_argument] otherwise). *)

val read : file:string -> tag:string -> (string, error) result
(** [read ~file ~tag] validates the full header and checksum and returns
    the payload. *)

val crc32 : string -> int
(** The IEEE 802.3 CRC-32 used by the format, exposed for tests. *)
