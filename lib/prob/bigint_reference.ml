(* The seed (pre-fast-path) bignum, kept verbatim as the differential-testing
   and benchmarking baseline for {!Bigint}: every operand is a heap-allocated
   sign-magnitude limb array, with no native-int shortcut anywhere.

   Sign-magnitude representation. [mag] is little-endian in base 2^15 with no
   high zero limbs; [sign] is 0 exactly when [mag] is empty. Base 2^15 keeps
   every intermediate product comfortably inside a 63-bit native int. *)

let base_bits = 15
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation is safe here because we accumulate via abs on each
       limb extraction using the sign-aware remainder *)
    let rec limbs acc n = if n = 0 then acc else limbs ((n land base_mask) :: acc) (n lsr base_bits) in
    let m = abs n in
    let l = List.rev (limbs [] m) in
    { sign; mag = Array.of_list l }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1

let num_bits t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else begin
    let top = t.mag.(n - 1) in
    let rec bits b v = if v = 0 then b else bits (b + 1) (v lsr 1) in
    ((n - 1) * base_bits) + bits 0 top
  end

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* requires a >= b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let v = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- v land base_mask;
          carry := v lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let v = r.(!k) + !carry in
          r.(!k) <- v land base_mask;
          carry := v lsr base_bits;
          incr k
        done
      end
    done;
    r
  end

let shift_left_mag a k =
  if Array.length a = 0 then [||]
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land base_mask);
      r.(i + limb_shift + 1) <- r.(i + limb_shift + 1) lor (v lsr base_bits)
    done;
    r
  end

let shift_right_mag a k =
  let limb_shift = k / base_bits and bit_shift = k mod base_bits in
  let la = Array.length a in
  if limb_shift >= la then [||]
  else begin
    let lr = la - limb_shift in
    let r = Array.make lr 0 in
    for i = 0 to lr - 1 do
      let lo = a.(i + limb_shift) lsr bit_shift in
      let hi = if i + limb_shift + 1 < la then (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land base_mask else 0 in
      r.(i) <- if bit_shift = 0 then a.(i + limb_shift) else lo lor hi
    done;
    r
  end

let add a b =
  match (a.sign, b.sign) with
  | 0, _ -> b
  | _, 0 -> a
  | sa, sb when sa = sb -> make sa (add_mag a.mag b.mag)
  | sa, _ ->
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make sa (sub_mag a.mag b.mag)
    else make (-sa) (sub_mag b.mag a.mag)

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let sub a b = add a (neg b)
let abs t = if t.sign < 0 then { t with sign = 1 } else t

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let succ t = add t one
let pred t = sub t one

let mul_int t k = mul t (of_int k)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let shift_left t k = if t.sign = 0 || k = 0 then t else make t.sign (shift_left_mag t.mag k)
let shift_right t k = if t.sign = 0 || k = 0 then t else make t.sign (shift_right_mag t.mag k)

let pow2 k = shift_left one k

(* Binary long division on magnitudes. Magnitudes in this code base stay
   below a few thousand bits, so the O(bits * limbs) cost is irrelevant next
   to implementation transparency. *)
let divmod_mag u v =
  let bit u i = (u.((i / base_bits)) lsr (i mod base_bits)) land 1 in
  let nu = Array.length u * base_bits in
  let q = Array.make (Array.length u) 0 in
  (* remainder as a mutable magnitude with capacity of v plus one limb *)
  let cap = Array.length v + 2 in
  let r = Array.make cap 0 in
  let rlen = ref 0 in
  let r_shift_or (b : int) =
    (* r := r*2 + b *)
    let carry = ref b in
    for i = 0 to !rlen - 1 do
      let v2 = (r.(i) lsl 1) lor !carry in
      r.(i) <- v2 land base_mask;
      carry := v2 lsr base_bits
    done;
    if !carry <> 0 then begin r.(!rlen) <- !carry; incr rlen end
  in
  let r_ge_v () =
    let lv = Array.length v in
    if !rlen <> lv then !rlen > lv
    else begin
      let rec go i = if i < 0 then true else if r.(i) <> v.(i) then r.(i) > v.(i) else go (i - 1) in
      go (lv - 1)
    end
  in
  let r_sub_v () =
    let borrow = ref 0 in
    let lv = Array.length v in
    for i = 0 to !rlen - 1 do
      let d = r.(i) - (if i < lv then v.(i) else 0) - !borrow in
      if d < 0 then begin r.(i) <- d + base; borrow := 1 end
      else begin r.(i) <- d; borrow := 0 end
    done;
    while !rlen > 0 && r.(!rlen - 1) = 0 do decr rlen done
  in
  for i = nu - 1 downto 0 do
    r_shift_or (bit u i);
    if r_ge_v () then begin
      r_sub_v ();
      q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    end
  done;
  (q, Array.sub r 0 !rlen)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = make (a.sign * b.sign) qm in
    let r = make a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

(* Stein's binary gcd: shift/subtract only, much cheaper than Euclid with our
   bit-serial division. *)
let gcd a b =
  let a = abs a and b = abs b in
  if is_zero a then b
  else if is_zero b then a
  else begin
    let trailing_zeros t =
      let rec limb i = if t.mag.(i) = 0 then limb (i + 1) else i in
      let li = limb 0 in
      let v = t.mag.(li) in
      let rec bits b v = if v land 1 = 1 then b else bits (b + 1) (v lsr 1) in
      (li * base_bits) + bits 0 v
    in
    let za = trailing_zeros a and zb = trailing_zeros b in
    let shift = Stdlib.min za zb in
    let rec go a b =
      (* invariants: a odd, b odd (after reduction), both positive *)
      if is_zero b then a
      else begin
        let b = shift_right b (trailing_zeros b) in
        if compare a b > 0 then go b (sub a b) else go a (sub b a)
      end
    in
    let a = shift_right a za and b = shift_right b zb in
    shift_left (go a b) shift
  end

let to_int_opt t =
  if t.sign = 0 then Some 0
  else if num_bits t > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor t.mag.(i)
    done;
    Some (t.sign * !v)
  end

let to_int t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int: does not fit in a native int"

let to_float t =
  let v = ref 0.0 in
  let b = float_of_int base in
  for i = Array.length t.mag - 1 downto 0 do
    v := (!v *. b) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !v

(* divide magnitude by a small positive int, returning quotient mag and int
   remainder; used by decimal conversion. *)
let divmod_small_mag mag m =
  let l = Array.length mag in
  let q = Array.make l 0 in
  let r = ref 0 in
  for i = l - 1 downto 0 do
    let cur = (!r lsl base_bits) lor mag.(i) in
    q.(i) <- cur / m;
    r := cur mod m
  done;
  (q, !r)

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let mag = ref t.mag in
    while Array.length (normalize_mag !mag) > 0 do
      let q, r = divmod_small_mag !mag 1_000_000_000 in
      chunks := r :: !chunks;
      mag := normalize_mag q
    done;
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start = match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0) in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten9 = of_int 1_000_000_000 in
  let i = ref start in
  while !i < len do
    let chunk_len = Stdlib.min 9 (len - !i) in
    let chunk = String.sub s !i chunk_len in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: invalid digit") chunk;
    let mult = if chunk_len = 9 then ten9 else pow (of_int 10) chunk_len in
    acc := add (mul !acc mult) (of_int (int_of_string chunk));
    i := !i + chunk_len
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)
