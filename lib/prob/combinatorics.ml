module B = Bigint

(* Both memo tables below are global and reachable from Par domains (the
   exact-series estimators call into phi from worker code), so every table
   access goes through [cache_lock]. The lock is held only around the
   Hashtbl probe/insert — never across the recursive compute — so the
   recursion in [bounded_at_most] cannot deadlock on it; the cost is that
   two domains racing on the same key may both compute it, which is benign
   (the values are equal and [Hashtbl.replace] keeps one binding). *)
let cache_lock = Mutex.create ()

type cache_stats = {
  binomial_hits : int;
  binomial_misses : int;
  binomial_entries : int;
  partition_hits : int;
  partition_misses : int;
  partition_entries : int;
}

let c_bin_hits = ref 0
let c_bin_misses = ref 0
let c_part_hits = ref 0
let c_part_misses = ref 0

(* n is capped so the memo stays a bounded triangle (~cap^2/2 entries at
   worst) no matter how long the process runs; larger n falls through to
   the direct multiplicative formula. *)
let binomial_memo_cap = 512

let binomial_cache : (int * int, B.t) Hashtbl.t = Hashtbl.create 1024
let partition_cache : (int * int * int, B.t) Hashtbl.t = Hashtbl.create 4096

let cache_stats () =
  Mutex.protect cache_lock (fun () ->
      {
        binomial_hits = !c_bin_hits;
        binomial_misses = !c_bin_misses;
        binomial_entries = Hashtbl.length binomial_cache;
        partition_hits = !c_part_hits;
        partition_misses = !c_part_misses;
        partition_entries = Hashtbl.length partition_cache;
      })

let clear_caches () =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.reset binomial_cache;
      Hashtbl.reset partition_cache;
      c_bin_hits := 0;
      c_bin_misses := 0;
      c_part_hits := 0;
      c_part_misses := 0)

let binomial_direct n k =
  (* multiplicative formula; each intermediate division is exact *)
  let acc = ref B.one in
  for i = 1 to k do
    acc := B.div (B.mul_int !acc (n - k + i)) (B.of_int i)
  done;
  !acc

let binomial n k =
  if n < 0 then invalid_arg "Combinatorics.binomial: n < 0";
  if k < 0 || k > n then B.zero
  else begin
    let k = if k > n - k then n - k else k in
    if k = 0 then B.one
    else if n > binomial_memo_cap then binomial_direct n k
    else begin
      let key = (n, k) in
      Mutex.lock cache_lock;
      let cached = Hashtbl.find_opt binomial_cache key in
      (match cached with Some _ -> incr c_bin_hits | None -> incr c_bin_misses);
      Mutex.unlock cache_lock;
      match cached with
      | Some v -> v
      | None ->
        let v = binomial_direct n k in
        Mutex.lock cache_lock;
        Hashtbl.replace binomial_cache key v;
        Mutex.unlock cache_lock;
        v
    end
  end

let binomial_float n k = B.to_float (binomial n k)

let factorial n =
  if n < 0 then invalid_arg "Combinatorics.factorial: n < 0";
  let acc = ref B.one in
  for i = 2 to n do acc := B.mul_int !acc i done;
  !acc

let log2_factorial n =
  let acc = ref 0.0 in
  for i = 2 to n do acc := !acc +. (Float.log (float_of_int i) /. Float.log 2.0) done;
  !acc

(* phi(x,y,z) = partitions of x into exactly y positive parts each <= z.
   Subtracting 1 from every part reduces to f(x-y, y, z-1) where f(n,k,m) is
   the count of partitions of n into at most k parts each <= m, with the
   classic recurrence f(n,k,m) = f(n,k,m-1) + f(n-m,k-1,m). *)
let rec bounded_at_most n k m =
  if n = 0 then B.one
  else if n < 0 || k = 0 || m = 0 then B.zero
  else begin
    let key = (n, k, m) in
    Mutex.lock cache_lock;
    let cached = Hashtbl.find_opt partition_cache key in
    (match cached with Some _ -> incr c_part_hits | None -> incr c_part_misses);
    Mutex.unlock cache_lock;
    match cached with
    | Some v -> v
    | None ->
      let v = B.add (bounded_at_most n k (m - 1)) (bounded_at_most (n - m) (k - 1) m) in
      Mutex.lock cache_lock;
      Hashtbl.replace partition_cache key v;
      Mutex.unlock cache_lock;
      v
  end

let partitions_bounded x y z =
  if y < 0 || z < 0 then invalid_arg "Combinatorics.partitions_bounded: negative parameter";
  if y = 0 then (if x = 0 then B.one else B.zero)
  else if x < y || x > y * z then B.zero
  else bounded_at_most (x - y) y (z - 1)

let check_perm_size n =
  if n < 0 || n > 9 then invalid_arg "Combinatorics: permutation degree must be in [0, 9]"

(* Heap's algorithm, iterative folding. *)
let fold_permutations f init n =
  check_perm_size n;
  let a = Array.init n (fun i -> i) in
  let c = Array.make n 0 in
  let acc = ref (f init a) in
  let i = ref 0 in
  while !i < n do
    if c.(!i) < !i then begin
      let j = if !i land 1 = 0 then 0 else c.(!i) in
      let tmp = a.(j) in
      a.(j) <- a.(!i);
      a.(!i) <- tmp;
      acc := f !acc a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done;
  !acc

let permutations n =
  List.rev (fold_permutations (fun acc a -> Array.copy a :: acc) [] n)

let compositions total parts f =
  if parts < 0 || total < 0 then invalid_arg "Combinatorics.compositions: negative parameter";
  if parts = 0 then (if total = 0 then f [||])
  else begin
    let a = Array.make parts 0 in
    let rec go idx remaining =
      if idx = parts - 1 then begin
        a.(idx) <- remaining;
        f a
      end
      else
        for v = 0 to remaining do
          a.(idx) <- v;
          go (idx + 1) (remaining - v)
        done
    in
    go 0 total
  end
