let geometric_half_pmf k = if k < 0 then 0.0 else Float.pow 2.0 (float_of_int (-(k + 1)))
let geometric_half_pmf_q k = if k < 0 then Rational.zero else Rational.pow2 (-(k + 1))
let geometric_half_sf k = if k <= 0 then 1.0 else Float.pow 2.0 (float_of_int (-k))
let geometric_pmf ~p k = if k < 0 then 0.0 else (Float.pow (1.0 -. p) (float_of_int k)) *. p

let sample_geometric_half = Rng.geometric_half
let sample_bernoulli = Rng.bernoulli

let sample_categorical rng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (total > 0.0) then invalid_arg "Dist.sample_categorical: weights must have positive sum";
  let u = Rng.float rng *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
    end
  in
  go 0 0.0

(* Precomputed cumulative table: [cum.(i)] is the scan's running prefix sum
   after weight [i], built by the same left-to-right float summation as
   [sample_categorical], so a binary search over it lands on exactly the
   index the linear scan returns for the same uniform draw. *)
type categorical = { cum : float array }

let categorical weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: weights must be nonempty";
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let w = weights.(i) in
    if not (w >= 0.0) then invalid_arg "Dist.categorical: negative weight";
    acc := !acc +. w;
    cum.(i) <- !acc
  done;
  if not (!acc > 0.0) then invalid_arg "Dist.categorical: weights must have positive sum";
  { cum }

let sample_categorical_table { cum } rng =
  let n = Array.length cum in
  let u = Rng.float rng *. cum.(n - 1) in
  (* smallest i with u < cum.(i), clamped to n - 1: the scan's answer *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u < Array.unsafe_get cum mid then hi := mid else lo := mid + 1
  done;
  !lo

type 'a pmf = ('a * Rational.t) list

let pmf_total pmf = Rational.sum (List.map snd pmf)

let pmf_normalize pmf =
  let t = pmf_total pmf in
  if Rational.is_zero t then invalid_arg "Dist.pmf_normalize: zero total mass";
  List.map (fun (v, p) -> (v, Rational.div p t)) pmf

let pmf_expect pmf f =
  Rational.sum (List.map (fun (v, p) -> Rational.mul (f v) p) pmf)

let pmf_merge pmf =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (v, p) ->
      match Hashtbl.find_opt tbl v with
      | None ->
        Hashtbl.add tbl v p;
        order := v :: !order
      | Some q -> Hashtbl.replace tbl v (Rational.add p q))
    pmf;
  List.rev_map (fun v -> (v, Hashtbl.find tbl v)) !order
