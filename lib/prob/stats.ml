type summary = {
  count : int;
  mean : float;
  variance : float;
  std_dev : float;
  min : float;
  max : float;
}

type t = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mu = 0.0; m2 = 0.0; lo = Float.infinity; hi = Float.neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mu in
  t.mu <- t.mu +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mu));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let mean t = t.mu

let summary t =
  let variance = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1) in
  {
    count = t.n;
    mean = t.mu;
    variance;
    std_dev = Float.sqrt variance;
    min = (if t.n = 0 then Float.nan else t.lo);
    max = (if t.n = 0 then Float.nan else t.hi);
  }

let of_samples l =
  let t = create () in
  List.iter (add t) l;
  summary t

type interval = { lo : float; hi : float }

let mean_ci s ~z =
  if s.count = 0 then { lo = Float.nan; hi = Float.nan }
  else begin
    let se = s.std_dev /. Float.sqrt (float_of_int s.count) in
    { lo = s.mean -. (z *. se); hi = s.mean +. (z *. se) }
  end

let wilson_ci ~successes ~trials ~z =
  if trials <= 0 then invalid_arg "Stats.wilson_ci: trials must be positive";
  if successes < 0 then invalid_arg "Stats.wilson_ci: successes must be nonnegative";
  if successes > trials then invalid_arg "Stats.wilson_ci: successes must not exceed trials";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let spread = z *. Float.sqrt (((p *. (1.0 -. p)) +. (z2 /. (4.0 *. n))) /. n) /. denom in
  { lo = Float.max 0.0 (center -. spread); hi = Float.min 1.0 (center +. spread) }

let binomial_point ~successes ~trials = float_of_int successes /. float_of_int trials

type histogram = { bins : (int * int) list; total : int }

let histogram_of_counts tbl =
  let bins = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let bins = List.sort (fun (a, _) (b, _) -> compare a b) bins in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 bins in
  { bins; total }

let histogram values =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let c = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (c + 1))
    values;
  histogram_of_counts tbl

let empirical_pmf h =
  let n = float_of_int h.total in
  List.map (fun (v, c) -> (v, float_of_int c /. n)) h.bins

let chi_squared ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Stats.chi_squared: length mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      if e <= 0.0 then begin
        if o <> 0 then invalid_arg "Stats.chi_squared: observation in a zero-expectation cell"
      end
      else begin
        let d = float_of_int o -. e in
        acc := !acc +. (d *. d /. e)
      end)
    observed;
  !acc

let chi_squared_threshold_99 ~dof =
  if dof < 1 then invalid_arg "Stats.chi_squared_threshold_99: dof >= 1 required";
  match dof with
  | 1 -> 6.635
  | 2 -> 9.210
  | 3 -> 11.345
  | 4 -> 13.277
  | 5 -> 15.086
  | 6 -> 16.812
  | 7 -> 18.475
  | 8 -> 20.090
  | 9 -> 21.666
  | 10 -> 23.209
  | d ->
    (* Wilson–Hilferty: chi2_q(d) ~ d (1 - 2/(9d) + z_q sqrt(2/(9d)))^3,
       z_0.99 = 2.3263 *)
    let df = float_of_int d in
    let t = 1.0 -. (2.0 /. (9.0 *. df)) +. (2.3263 *. Float.sqrt (2.0 /. (9.0 *. df))) in
    df *. (t ** 3.0)

let total_variation p q =
  let module M = Map.Make (Int) in
  let add_map sign m l =
    List.fold_left
      (fun m (k, v) ->
        let cur = Option.value ~default:0.0 (M.find_opt k m) in
        M.add k (cur +. (sign *. v)) m)
      m l
  in
  let diff = add_map (-1.0) (add_map 1.0 M.empty p) q in
  0.5 *. M.fold (fun _ v acc -> acc +. Float.abs v) diff 0.0
