(** The seed arbitrary-precision integer implementation, kept alive as the
    differential-testing and benchmarking baseline.

    {!Bigint} carries the production representation (a native-int fast path
    over these same limb algorithms); this module is the original
    always-allocating sign-magnitude form, exposed as {!Bigint.Reference} so
    randomized differential tests and the [--json-exact] bench can pin the
    fast path against it operation by operation. Do not use it on hot
    paths. *)

type t
(** An immutable arbitrary-precision integer. *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t
(** [of_int n] converts a native integer exactly. *)

val to_int : t -> int
(** [to_int t] converts back to a native integer.
    Raises [Failure] if [t] does not fit. *)

val to_int_opt : t -> int option
(** [to_int_opt t] is [Some n] when [t] fits in a native integer. *)

val to_float : t -> float
(** [to_float t] is the nearest(ish) float; intended for display and for
    seeding float-domain computations, not for exactness. *)

val of_string : string -> t
(** [of_string s] parses an optionally-signed decimal numeral.
    Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** [to_string t] is the decimal numeral of [t]. *)

val sign : t -> int
(** [sign t] is [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated division
    (quotient rounded toward zero, [r] has the sign of [a], [|r| < |b|]).
    Raises [Division_by_zero] if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val mul_int : t -> int -> t
(** [mul_int t k] multiplies by a native integer. *)

val pow : t -> int -> t
(** [pow b e] is [b^e]. Raises [Invalid_argument] for negative [e]. *)

val pow2 : int -> t
(** [pow2 k] is [2^k] for [k >= 0]. *)

val shift_left : t -> int -> t
(** [shift_left t k] is [t * 2^k]. *)

val shift_right : t -> int -> t
(** [shift_right t k] is [t / 2^k] for nonnegative [t] (arithmetic shift of
    the magnitude; truncates toward zero for negatives). *)

val gcd : t -> t -> t
(** [gcd a b] is the nonnegative greatest common divisor (binary/Stein
    algorithm — no division, so it is the cheap path rationals rely on). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val num_bits : t -> int
(** [num_bits t] is the bit length of the magnitude ([num_bits zero = 0]). *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer (decimal). *)
