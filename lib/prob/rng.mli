(** Deterministic pseudo-random number generation.

    All stochastic components of memrel draw randomness through this module
    so that every experiment is reproducible from a single integer seed. The
    generator is xoshiro256++ seeded via splitmix64, which is both fast and
    of far higher quality than the needs of Monte Carlo estimation here. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed]. Equal
    seeds yield identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    subsequent streams are statistically independent. Used to hand each
    thread/replica of an experiment its own stream. *)

val substream : int64 -> int -> t
(** [substream base i] is the [i]-th substream of the entropy word [base]:
    a pure function of [(base, i)], so any party holding [base] can
    reconstruct stream [i] without consuming shared generator state.
    Distinct indices yield statistically independent streams (the index is
    diffused through splitmix64 before seeding). This is the keyed-chunk
    scheme of {!Par}: chunk [i] of a Monte Carlo run always draws from
    [substream base i], making results independent of how chunks are
    scheduled across domains. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. Uses rejection sampling, hence exactly uniform. *)

val float : t -> float
(** [float t] is uniform on [0, 1) with 53 bits of precision. *)

val bool : t -> bool
(** [bool t] is a fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val scale_probability : float -> int
(** [scale_probability p] is the integer threshold [ceil (p * 2^53)] such
    that {!bernoulli_scaled}[ t (scale_probability p)] draws the same word
    and returns the same verdict as {!bernoulli}[ t p] — exactly, not up to
    rounding (both comparisons scale by a power of two, which is exact).
    Precompute it once per probability so the hot loop passes an immediate
    int instead of boxing a float argument per draw. [p = 0] maps to
    threshold [0] (never true) and [p > 0] to a positive threshold, so
    [scale_probability p > 0] iff [p > 0.0]. Raises [Invalid_argument]
    outside [0, 1]. *)

val bernoulli_scaled : t -> int -> bool
(** [bernoulli_scaled t threshold] is {!bernoulli} with the probability
    pre-scaled by {!scale_probability}. Allocation-free. *)

val geometric_half : t -> int
(** [geometric_half t] samples the paper's shift distribution:
    [Pr[k] = 2^-(k+1)] for [k >= 0], i.e. the number of heads before the
    first tail of a fair coin. Sampled by counting leading coin flips, so no
    floating-point log is involved. *)

val geometric : t -> float -> int
(** [geometric t p] samples [Pr[k] = (1-p)^k p] for [k >= 0], the number of
    failures before the first success with success probability [p].
    Requires [0 < p <= 1]. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a uniform Fisher–Yates shuffle. *)
