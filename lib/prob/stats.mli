(** Summary statistics and confidence intervals for Monte Carlo estimates.

    Every simulated number reported in EXPERIMENTS.md comes with an interval
    so the paper-vs-measured comparison is honest about sampling error. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** unbiased sample variance (0 when count < 2) *)
  std_dev : float;
  min : float;
  max : float;
}

type t
(** A mutable accumulator (Welford's online algorithm: numerically stable,
    single pass). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val summary : t -> summary

val of_samples : float list -> summary

type interval = { lo : float; hi : float }

val mean_ci : summary -> z:float -> interval
(** [mean_ci s ~z] is the normal-approximation CI [mean +- z * stderr].
    [z = 1.96] for 95%. *)

val wilson_ci : successes:int -> trials:int -> z:float -> interval
(** [wilson_ci ~successes ~trials ~z] is the Wilson score interval for a
    Bernoulli proportion — well-behaved even when the proportion is near 0,
    which matters for rare-event probabilities like Pr[B_gamma] at large
    gamma. Requires [trials > 0] and [0 <= successes <= trials]. *)

val binomial_point : successes:int -> trials:int -> float
(** Plain proportion estimate. *)

type histogram = { bins : (int * int) list; total : int }
(** Sparse integer histogram: [(value, count)] sorted by value. *)

val histogram : int list -> histogram
val histogram_of_counts : (int, int) Hashtbl.t -> histogram

val empirical_pmf : histogram -> (int * float) list
(** Normalized histogram. *)

val total_variation : (int * float) list -> (int * float) list -> float
(** [total_variation p q] is the total-variation distance between two pmfs
    given as sparse [(value, prob)] lists: used to compare empirical window
    distributions against the analytic ones. *)

val chi_squared : observed:int array -> expected:float array -> float
(** [chi_squared ~observed ~expected] is the Pearson statistic
    [sum (o_i - e_i)^2 / e_i]. Cells with [expected <= 0] must have zero
    observations (else [Invalid_argument]); such cells contribute nothing.
    Degrees of freedom are the caller's business. *)

val chi_squared_threshold_99 : dof:int -> float
(** Conservative 99th-percentile critical values for small degrees of
    freedom (1..30, via the Wilson–Hilferty approximation beyond a small
    exact table): a goodness-of-fit test rejects at the 1% level when the
    statistic exceeds this. Used by the stochastic tests so their false
    positive rate is known. *)
