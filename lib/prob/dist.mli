(** Discrete probability distributions: pmfs, cdfs and samplers.

    The paper's two primitive random sources are the fair coin (program
    generation and settling, p = s = 1/2) and the geometric shift
    Pr[k] = 2^-(k+1). This module gives both their exact pmfs and samplers,
    plus generic categorical sampling for workload generators. *)

val geometric_half_pmf : int -> float
(** [geometric_half_pmf k] is [2^-(k+1)] for [k >= 0], else 0. *)

val geometric_half_pmf_q : int -> Rational.t
(** Exact rational version. *)

val geometric_half_sf : int -> float
(** Survival [Pr[s >= k] = 2^-k] for [k >= 0] (1 for negative [k]). *)

val geometric_pmf : p:float -> int -> float
(** [geometric_pmf ~p k] is [(1-p)^k * p]. *)

val sample_geometric_half : Rng.t -> int
val sample_bernoulli : Rng.t -> float -> bool

val sample_categorical : Rng.t -> float array -> int
(** [sample_categorical rng weights] draws index [i] with probability
    proportional to [weights.(i)]. Requires nonnegative weights with a
    positive sum. Linear scan, re-summing the weights on every draw — the
    reference implementation; build a {!categorical} table when drawing
    repeatedly from the same weights. *)

type categorical
(** Precomputed cumulative table for repeated categorical draws: build once
    per estimator call, then each draw is one uniform deviate plus a binary
    search (no per-draw summation, no allocation). *)

val categorical : float array -> categorical
(** [categorical weights] precomputes the cumulative table. Requires a
    nonempty array of nonnegative weights with positive sum (raises
    [Invalid_argument] otherwise). The table snapshots the weights; later
    mutation of the input array is not observed. *)

val sample_categorical_table : categorical -> Rng.t -> int
(** [sample_categorical_table c rng] draws from the precomputed table. The
    cumulative sums are accumulated in the same left-to-right order as
    {!sample_categorical}'s scan, so for the same generator state the two
    return {e identical} indices — checked in [test/prob/test_dist.ml]. *)

type 'a pmf = ('a * Rational.t) list
(** A finite exact pmf as a sparse association list. *)

val pmf_total : 'a pmf -> Rational.t
val pmf_normalize : 'a pmf -> 'a pmf
val pmf_expect : int pmf -> (int -> Rational.t) -> Rational.t
(** [pmf_expect pmf f] is [sum_v f v * Pr[v]]. *)

val pmf_merge : 'a pmf -> 'a pmf
(** Combine duplicate keys by summing their probabilities. *)
