(** Cooperative resource budgets for long-running engines.

    Every unbounded loop in memrel — the Monte Carlo chunk scheduler
    ({!Par}), the exhaustive litmus enumerator, the axiomatic candidate
    generator — periodically asks a budget whether it may continue. A budget
    combines up to three limits:

    - a {e wall-clock deadline}, measured from {!create};
    - a {e work cap}, counted in engine-specific units (chunks for Monte
      Carlo, admitted states for enumeration, accepted candidates for the
      axiomatic generator) that the engine reports via {!spend};
    - an {e allocation watermark} over the major heap, sampled with
      [Gc.quick_stat] (cheap: no heap walk).

    Checks are cooperative and coarse-grained — engines poll at
    chunk/state/candidate granularity, so a deadline is honoured to within
    one work unit, not preemptively. On exhaustion an engine does not raise:
    it returns a typed partial result carrying everything computed so far
    plus the {!exhaustion} record (see [Par.run_governed],
    [Enumerate.outcomes], [Generate.iter]).

    A budget is single-use: it anchors its deadline at creation and its work
    counter only grows. Create a fresh one per run. [spend]/[check] are
    domain-safe (the counter is atomic), so one budget can govern a parallel
    fan-out. *)

type cause =
  | Deadline  (** the wall-clock deadline passed *)
  | Work  (** the work cap was reached *)
  | Memory  (** the major heap grew past the watermark *)

type exhaustion = {
  cause : cause;
  work_done : int;  (** work units spent when the budget tripped *)
  elapsed_s : float;  (** wall-clock seconds since {!create} *)
}

type t

val create : ?deadline_s:float -> ?max_work:int -> ?max_mem_bytes:int -> unit -> t
(** [create ()] is an unlimited budget; each optional limit arms one check.
    The deadline clock starts now. Raises [Invalid_argument] if a limit is
    negative ([max_work 0] and [deadline_s 0.] are legal: they trip on the
    first check, which is how the CLI turns [--deadline 0] into a
    deterministic immediately-partial run). *)

val spend : t -> int -> unit
(** [spend t n] records [n] completed work units. Atomic; callable from any
    domain. *)

val work_done : t -> int
val elapsed_s : t -> float

val check : t -> cause option
(** [check t] is [Some cause] once any armed limit is exhausted, testing the
    work cap first, then the deadline, then the memory watermark. With no
    limits armed it never allocates and costs two loads. Exhaustion is
    sticky for the work counter and the deadline (they only grow), but the
    memory cause can clear if the GC shrinks the heap — engines treat the
    first [Some] as final. *)

val exhaustion : t -> cause -> exhaustion
(** Snapshot the counters into the record engines embed in partial
    results. *)

val cause_to_string : cause -> string
(** ["deadline"], ["work cap"], ["memory watermark"] — for one-line
    summaries. *)

val describe : exhaustion -> string
(** Human-readable one-liner, e.g. ["deadline after 2.01s (14 work units
    done)"]. *)
