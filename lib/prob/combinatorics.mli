(** Exact combinatorial quantities used throughout the paper's proofs.

    The TSO analysis (Section 4, Step 4) needs the bounded partition number
    phi(x, y, z) — the count the paper lower-bounds by 1; we compute it
    exactly so the "exact series" window distribution can be evaluated. The
    shift process (Theorem 5.1) needs sums over the symmetric group. *)

val binomial : int -> int -> Bigint.t
(** [binomial n k] is [C(n, k)]; zero when [k < 0] or [k > n].
    Requires [n >= 0]. Memoized for [n <= 512] (bounded triangle table);
    larger [n] computes directly. *)

val binomial_float : int -> int -> float
(** Float view of {!binomial} (for the float-domain series). *)

val factorial : int -> Bigint.t
(** [factorial n] for [n >= 0]. *)

val log2_factorial : int -> float
(** [log2_factorial n] is [log2 (n!)], computed by summation (exact enough
    for the Stirling-regime asymptotics of Theorem 6.3). *)

val partitions_bounded : int -> int -> int -> Bigint.t
(** [partitions_bounded x y z] is phi(x, y, z): the number of multisets of
    [y] positive integers, each at most [z], summing to [x]. This is the
    paper's phi — e.g. [partitions_bounded x y z] is at least 1 whenever
    [y <= x <= y * z] (the fact the paper's Claim 4.4 relies on). Memoized
    internally. *)

val permutations : int -> int array list
(** [permutations n] enumerates all permutations of [0 .. n-1]. Intended for
    the Theorem 5.1 sum, so [n] is expected to be small (the call raises
    [Invalid_argument] for [n > 9] to protect against accidental blowups). *)

val fold_permutations : ('a -> int array -> 'a) -> 'a -> int -> 'a
(** [fold_permutations f init n] folds [f] over all permutations of
    [0 .. n-1] without materializing the list. The array passed to [f] is
    reused between calls; copy it if you keep it. Same [n <= 9] guard. *)

val compositions : int -> int -> (int array -> unit) -> unit
(** [compositions total parts f] calls [f] on every array of [parts]
    nonnegative integers summing to [total] (the array is reused). *)

(** {1 Cache observability}

    The binomial and partition memo tables are global and mutex-guarded
    (they are reachable from {!Par} worker domains), so these numbers are
    exact. *)

type cache_stats = {
  binomial_hits : int;
  binomial_misses : int;
  binomial_entries : int;
  partition_hits : int;
  partition_misses : int;
  partition_entries : int;
}

val cache_stats : unit -> cache_stats

val clear_caches : unit -> unit
(** Empties both memo tables and zeroes the hit/miss counters (used by the
    bench harness to measure cold-cache behaviour). *)
