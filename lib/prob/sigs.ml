(** Shared signatures for the exact-arithmetic substrate.

    The exact DP consumers in [lib/settling] and [lib/shift] are functorized
    over [RATIONAL] so the bench harness can instantiate each one twice — over
    the fast-path {!Rational} and over {!Rational.Reference} — and measure a
    like-for-like speedup in a single process. The signature deliberately
    carries no [Bigint.t]-typed members so both implementations (which sit on
    different bignum types) satisfy it as-is. *)

module type RATIONAL = sig
  type t

  val zero : t
  val one : t
  val two : t
  val half : t

  val of_int : int -> t
  val of_ints : int -> int -> t
  val of_string : string -> t

  val of_float_dyadic : float -> t
  (** The exact rational value of a finite float. *)

  val to_string : t -> string
  val to_float : t -> float

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val inv : t -> t
  val mul_int : t -> int -> t
  val add_int : t -> int -> t
  val pow : t -> int -> t
  val pow2 : int -> t

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t
  val sign : t -> int
  val is_zero : t -> bool

  val sum : t list -> t
  val product : t list -> t

  val pp : Format.formatter -> t -> unit
end
