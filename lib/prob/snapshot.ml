let magic = "MRELSNAP"

let current_version = 1

type error =
  | Io of string
  | Not_a_snapshot
  | Version_mismatch of { expected : int; found : int }
  | Tag_mismatch of { expected : string; found : string }
  | Truncated
  | Crc_mismatch

let error_to_string = function
  | Io msg -> "i/o error: " ^ msg
  | Not_a_snapshot -> "not a memrel snapshot (bad magic)"
  | Version_mismatch { expected; found } ->
    Printf.sprintf "snapshot format version %d (this build reads version %d)" found expected
  | Tag_mismatch { expected; found } ->
    Printf.sprintf "snapshot tag %S (expected %S)" found expected
  | Truncated -> "snapshot truncated"
  | Crc_mismatch -> "snapshot payload fails its checksum"

(* -- CRC-32 (IEEE 802.3, polynomial 0xEDB88320) ------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

(* -- big-endian fixed-width fields ------------------------------------- *)

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_u32 buf v =
  for shift = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * shift)) land 0xff))
  done

let add_u64 buf v =
  for shift = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * shift)) land 0xff))
  done

let get_bytes s pos n =
  if pos + n > String.length s then None else Some (String.sub s pos n)

let get_uint s pos n =
  match get_bytes s pos n with
  | None -> None
  | Some b ->
    let v = ref 0 in
    String.iter (fun ch -> v := (!v lsl 8) lor Char.code ch) b;
    Some !v

(* -- write (tmp + rename) ---------------------------------------------- *)

(* All container IO goes through the Faultio facade: transient faults
   (EINTR, short transfers) are retried inside it, hard failures surface
   as the typed [Io] error here, and injected torn renames / crash points
   leave exactly the debris a real crash would — which the CRC and the
   orphan cleanup below are the defense against. *)

let write ~file ~tag payload =
  if String.length tag > 0xffff then invalid_arg "Snapshot.write: tag too long";
  let buf = Buffer.create (String.length payload + 64) in
  Buffer.add_string buf magic;
  add_u32 buf current_version;
  add_u16 buf (String.length tag);
  Buffer.add_string buf tag;
  add_u64 buf (String.length payload);
  add_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  let tmp = file ^ ".tmp" in
  match
    Faultio.write_file ~path:tmp (Buffer.contents buf);
    Faultio.rename ~src:tmp ~dst:file
  with
  | () -> Ok ()
  | exception (Faultio.Io msg | Sys_error msg) ->
    (* a failed write or rename must not strand the temporary: the next
       write to the same path would otherwise find a stale .tmp, and cache
       directories would accumulate garbage. A Crash_point deliberately
       skips this cleanup — a killed process cleans nothing. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (Io msg)

(* -- read + validate --------------------------------------------------- *)

let read_file file =
  match Faultio.read_file file with
  | s -> Ok s
  | exception (Faultio.Io msg | Sys_error msg) -> Error (Io msg)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let read ~file ~tag =
  let* s = read_file file in
  let* () =
    match get_bytes s 0 8 with
    | Some m when String.equal m magic -> Ok ()
    | _ -> Error Not_a_snapshot
  in
  let* version =
    match get_uint s 8 4 with Some v -> Ok v | None -> Error Not_a_snapshot
  in
  let* () =
    if version = current_version then Ok ()
    else Error (Version_mismatch { expected = current_version; found = version })
  in
  let* tag_len = match get_uint s 12 2 with Some v -> Ok v | None -> Error Truncated in
  let* found_tag =
    match get_bytes s 14 tag_len with Some t -> Ok t | None -> Error Truncated
  in
  let* () =
    if String.equal found_tag tag then Ok ()
    else Error (Tag_mismatch { expected = tag; found = found_tag })
  in
  let pos = 14 + tag_len in
  let* payload_len = match get_uint s pos 8 with Some v -> Ok v | None -> Error Truncated in
  let* crc = match get_uint s (pos + 8) 4 with Some v -> Ok v | None -> Error Truncated in
  let* payload =
    match get_bytes s (pos + 12) payload_len with
    | Some p when pos + 12 + payload_len = String.length s -> Ok p
    | _ -> Error Truncated
  in
  if crc32 payload = crc then Ok payload else Error Crc_mismatch
