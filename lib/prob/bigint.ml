(* Two-variant representation with a native-int fast path.

   [Small v] holds every value whose magnitude fits a native int, i.e.
   |v| <= max_int (min_int itself is excluded so that [abs]/[neg] never
   overflow). [Big] is the seed sign-magnitude limb form (little-endian base
   2^15, no high zero limbs, sign <> 0), reused verbatim from
   {!Bigint_reference} and reached only when a checked native operation
   overflows.

   Canonicality invariant: every constructor demotes, so a [Big] value
   ALWAYS has a magnitude of at least 63 bits. Mixed-variant comparison and
   division shortcuts, and structural equality of the representation,
   all rely on this invariant. *)

module Reference = Bigint_reference

let base_bits = 15
let base = 1 lsl base_bits
let base_mask = base - 1

type big = { sign : int; mag : int array }
type t = Small of int | Big of big

(* -- observability counters -------------------------------------------- *)

(* Plain (non-atomic) counters: an increment is a single word store, so
   concurrent domains may lose counts but can never tear a value. The
   numbers are advisory throughput telemetry, not part of any result. *)
type stats = {
  small_ops : int;
  big_ops : int;
  promotions : int;
  demotions : int;
}

let c_small = ref 0
let c_big = ref 0
let c_promote = ref 0
let c_demote = ref 0

let stats () =
  { small_ops = !c_small; big_ops = !c_big; promotions = !c_promote; demotions = !c_demote }

let reset_stats () =
  c_small := 0;
  c_big := 0;
  c_promote := 0;
  c_demote := 0

let small_hit_rate s =
  let total = s.small_ops + s.big_ops in
  if total = 0 then 1.0 else float_of_int s.small_ops /. float_of_int total

(* -- magnitude algorithms (shared with the reference implementation) --- *)

let normalize_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* requires a >= b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let v = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- v land base_mask;
          carry := v lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let v = r.(!k) + !carry in
          r.(!k) <- v land base_mask;
          carry := v lsr base_bits;
          incr k
        done
      end
    done;
    r
  end

let shift_left_mag a k =
  if Array.length a = 0 then [||]
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land base_mask);
      r.(i + limb_shift + 1) <- r.(i + limb_shift + 1) lor (v lsr base_bits)
    done;
    r
  end

let shift_right_mag a k =
  let limb_shift = k / base_bits and bit_shift = k mod base_bits in
  let la = Array.length a in
  if limb_shift >= la then [||]
  else begin
    let lr = la - limb_shift in
    let r = Array.make lr 0 in
    for i = 0 to lr - 1 do
      let lo = a.(i + limb_shift) lsr bit_shift in
      let hi = if i + limb_shift + 1 < la then (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land base_mask else 0 in
      r.(i) <- if bit_shift = 0 then a.(i + limb_shift) else lo lor hi
    done;
    r
  end

(* Binary long division on magnitudes; see Bigint_reference for the cost
   rationale. *)
let divmod_mag u v =
  let bit u i = (u.((i / base_bits)) lsr (i mod base_bits)) land 1 in
  let nu = Array.length u * base_bits in
  let q = Array.make (Array.length u) 0 in
  let cap = Array.length v + 2 in
  let r = Array.make cap 0 in
  let rlen = ref 0 in
  let r_shift_or (b : int) =
    let carry = ref b in
    for i = 0 to !rlen - 1 do
      let v2 = (r.(i) lsl 1) lor !carry in
      r.(i) <- v2 land base_mask;
      carry := v2 lsr base_bits
    done;
    if !carry <> 0 then begin r.(!rlen) <- !carry; incr rlen end
  in
  let r_ge_v () =
    let lv = Array.length v in
    if !rlen <> lv then !rlen > lv
    else begin
      let rec go i = if i < 0 then true else if r.(i) <> v.(i) then r.(i) > v.(i) else go (i - 1) in
      go (lv - 1)
    end
  in
  let r_sub_v () =
    let borrow = ref 0 in
    let lv = Array.length v in
    for i = 0 to !rlen - 1 do
      let d = r.(i) - (if i < lv then v.(i) else 0) - !borrow in
      if d < 0 then begin r.(i) <- d + base; borrow := 1 end
      else begin r.(i) <- d; borrow := 0 end
    done;
    while !rlen > 0 && r.(!rlen - 1) = 0 do decr rlen done
  in
  for i = nu - 1 downto 0 do
    r_shift_or (bit u i);
    if r_ge_v () then begin
      r_sub_v ();
      q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    end
  done;
  (q, Array.sub r 0 !rlen)

let gcd_mag a b =
  (* Stein on magnitudes; both nonempty *)
  let trailing_zeros mag =
    let rec limb i = if mag.(i) = 0 then limb (i + 1) else i in
    let li = limb 0 in
    let v = mag.(li) in
    let rec bits b v = if v land 1 = 1 then b else bits (b + 1) (v lsr 1) in
    (li * base_bits) + bits 0 v
  in
  let za = trailing_zeros a and zb = trailing_zeros b in
  let shift = Stdlib.min za zb in
  let rec go a b =
    if Array.length b = 0 then a
    else begin
      let b = normalize_mag (shift_right_mag b (trailing_zeros b)) in
      if cmp_mag a b > 0 then go b (normalize_mag (sub_mag a b))
      else go a (normalize_mag (sub_mag b a))
    end
  in
  let a = normalize_mag (shift_right_mag a za) and b = normalize_mag (shift_right_mag b zb) in
  shift_left_mag (go a b) shift

(* -- representation plumbing ------------------------------------------- *)

let mag_bits mag =
  let n = Array.length mag in
  if n = 0 then 0
  else begin
    let top = mag.(n - 1) in
    let rec bits b v = if v = 0 then b else bits (b + 1) (v lsr 1) in
    ((n - 1) * base_bits) + bits 0 top
  end

let nbits_int v =
  (* bit length of a NONNEGATIVE native int *)
  let rec bits b v = if v = 0 then b else bits (b + 1) (v lsr 1) in
  bits 0 v

(* limb magnitude of a nonnegative Int64 (covers |min_int| = 2^62) *)
let mag_of_int64 v =
  let rec limbs acc v =
    if Int64.equal v 0L then acc
    else limbs (Int64.to_int (Int64.logand v (Int64.of_int base_mask)) :: acc)
           (Int64.shift_right_logical v base_bits)
  in
  Array.of_list (List.rev (limbs [] v))

let mag_of_small v = mag_of_int64 (Int64.abs (Int64.of_int v))

(* demoting Big constructor: the only way a Big value is ever built *)
let make_big sign mag =
  let mag = normalize_mag mag in
  let b = mag_bits mag in
  if b = 0 then Small 0
  else if b <= 62 then begin
    (* magnitude <= 2^62 - 1 = max_int: fits Small *)
    incr c_demote;
    let v = ref 0 in
    for i = Array.length mag - 1 downto 0 do
      v := (!v lsl base_bits) lor mag.(i)
    done;
    Small (sign * !v)
  end
  else Big { sign; mag }

(* exact promotion of an overflowed native sum: |v64| < 2^63 *)
let of_sum_int64 v64 =
  incr c_promote;
  let sign = if Int64.compare v64 0L < 0 then -1 else 1 in
  make_big sign (mag_of_int64 (Int64.abs v64))

let to_big = function
  | Small v ->
    let sign = if v > 0 then 1 else if v < 0 then -1 else 0 in
    { sign; mag = mag_of_small v }
  | Big b -> b

let zero = Small 0
let one = Small 1
let two = Small 2
let minus_one = Small (-1)

let of_int n = if n = min_int then make_big (-1) (mag_of_small n) else Small n

let sign = function
  | Small v -> if v > 0 then 1 else if v < 0 then -1 else 0
  | Big b -> b.sign

let is_zero = function Small 0 -> true | _ -> false
let is_one = function Small 1 -> true | _ -> false

let num_bits = function
  | Small v -> nbits_int (abs v)
  | Big b -> mag_bits b.mag

(* -- arithmetic -------------------------------------------------------- *)

let big_add a b =
  incr c_big;
  let a = to_big a and b = to_big b in
  match (a.sign, b.sign) with
  | 0, _ -> make_big b.sign b.mag
  | _, 0 -> make_big a.sign a.mag
  | sa, sb when sa = sb -> make_big sa (add_mag a.mag b.mag)
  | sa, _ ->
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make_big sa (sub_mag a.mag b.mag)
    else make_big (-sa) (sub_mag b.mag a.mag)

let add a b =
  match (a, b) with
  | Small x, Small y ->
    let s = x + y in
    if (x lxor s) land (y lxor s) < 0 || s = min_int then
      of_sum_int64 (Int64.add (Int64.of_int x) (Int64.of_int y))
    else begin incr c_small; Small s end
  | _ -> big_add a b

let neg = function
  | Small v -> Small (-v)
  | Big b -> Big { b with sign = -b.sign }

let abs = function
  | Small v -> Small (abs v)
  | Big b -> if b.sign < 0 then Big { b with sign = 1 } else Big b

let sub a b =
  match (a, b) with
  | Small x, Small y ->
    let s = x - y in
    if (x lxor y) land (x lxor s) < 0 || s = min_int then
      of_sum_int64 (Int64.sub (Int64.of_int x) (Int64.of_int y))
    else begin incr c_small; Small s end
  | _ -> big_add a (neg b)

let big_mul a b =
  incr c_big;
  let a = to_big a and b = to_big b in
  if a.sign = 0 || b.sign = 0 then zero
  else make_big (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul a b =
  match (a, b) with
  | Small 0, _ | _, Small 0 -> incr c_small; zero
  | Small x, Small y ->
    let p = x * y in
    (* the division check is complete: a wrapped product differs from the
       true one by k * 2^63, which always shifts the quotient; p = min_int
       is promoted before dividing so min_int / -1 is never evaluated *)
    if p = min_int || p / x <> y then begin
      incr c_promote;
      incr c_big;
      make_big ((if x > 0 then 1 else -1) * (if y > 0 then 1 else -1))
        (mul_mag (mag_of_small x) (mag_of_small y))
    end
    else begin incr c_small; Small p end
  | _ -> big_mul a b

let succ t = add t one
let pred t = sub t one

let mul_int t k = mul t (of_int k)

let compare a b =
  match (a, b) with
  | Small x, Small y -> Stdlib.compare x y
  | Small _, Big b -> if b.sign > 0 then -1 else 1
  | Big a, Small _ -> if a.sign > 0 then 1 else -1
  | Big a, Big b ->
    if a.sign <> b.sign then Stdlib.compare a.sign b.sign
    else if a.sign >= 0 then cmp_mag a.mag b.mag
    else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let shift_left t k =
  if k = 0 then t
  else
    match t with
    | Small 0 -> zero
    | Small v ->
      if nbits_int (Stdlib.abs v) + k <= 62 then begin incr c_small; Small (v lsl k) end
      else begin
        incr c_promote;
        incr c_big;
        make_big (if v > 0 then 1 else -1) (shift_left_mag (mag_of_small v) k)
      end
    | Big b ->
      incr c_big;
      make_big b.sign (shift_left_mag b.mag k)

let shift_right t k =
  if k = 0 then t
  else
    match t with
    | Small v ->
      incr c_small;
      let m = Stdlib.abs v in
      let r = if k > 62 then 0 else m lsr k in
      Small (if v < 0 then -r else r)
    | Big b ->
      incr c_big;
      make_big b.sign (shift_right_mag b.mag k)

let pow2 k = shift_left one k

let divmod a b =
  match (a, b) with
  | _, Small 0 -> raise Division_by_zero
  | Small x, Small y -> incr c_small; (Small (x / y), Small (x mod y))
  | Small _, Big _ ->
    (* canonical Big magnitudes exceed every Small magnitude *)
    incr c_small;
    (zero, a)
  | _ ->
    incr c_big;
    let ab = to_big a and bb = to_big b in
    if bb.sign = 0 then raise Division_by_zero
    else if ab.sign = 0 then (zero, zero)
    else if cmp_mag ab.mag bb.mag < 0 then (zero, a)
    else begin
      let qm, rm = divmod_mag ab.mag bb.mag in
      (make_big (ab.sign * bb.sign) qm, make_big ab.sign rm)
    end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

(* binary gcd on nonnegative native ints *)
let int_gcd a b =
  if a = 0 then b
  else if b = 0 then a
  else begin
    let ctz v =
      let rec go n v = if v land 1 = 1 then n else go (n + 1) (v lsr 1) in
      go 0 v
    in
    let za = ctz a and zb = ctz b in
    let k = if za < zb then za else zb in
    let a = ref (a lsr za) and b = ref (b lsr zb) in
    while !b <> 0 do
      if !a > !b then begin
        let t = !a in
        a := !b;
        b := t
      end;
      b := !b - !a;
      if !b <> 0 then b := !b lsr ctz !b
    done;
    !a lsl k
  end

let gcd a b =
  match (a, b) with
  | Small x, Small y -> incr c_small; Small (int_gcd (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
    incr c_big;
    let ab = to_big a and bb = to_big b in
    if ab.sign = 0 then abs b
    else if bb.sign = 0 then abs a
    else make_big 1 (gcd_mag ab.mag bb.mag)

(* -- conversions ------------------------------------------------------- *)

let to_int_opt = function
  | Small v -> Some v
  (* canonical Big values need at least 63 magnitude bits, which the seed
     conversion also rejects (it requires num_bits <= 62) *)
  | Big _ -> None

let to_int t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int: does not fit in a native int"

let to_float = function
  | Small v -> float_of_int v
  | Big b ->
    let v = ref 0.0 in
    let fbase = float_of_int base in
    for i = Array.length b.mag - 1 downto 0 do
      v := (!v *. fbase) +. float_of_int b.mag.(i)
    done;
    float_of_int b.sign *. !v

(* divide magnitude by a small positive int, returning quotient mag and int
   remainder; used by decimal conversion. *)
let divmod_small_mag mag m =
  let l = Array.length mag in
  let q = Array.make l 0 in
  let r = ref 0 in
  for i = l - 1 downto 0 do
    let cur = (!r lsl base_bits) lor mag.(i) in
    q.(i) <- cur / m;
    r := cur mod m
  done;
  (q, !r)

let to_string = function
  | Small v -> string_of_int v
  | Big b ->
    let chunks = ref [] in
    let mag = ref b.mag in
    while Array.length (normalize_mag !mag) > 0 do
      let q, r = divmod_small_mag !mag 1_000_000_000 in
      chunks := r :: !chunks;
      mag := normalize_mag q
    done;
    let buf = Buffer.create 32 in
    if b.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start = match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0) in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  for i = start to len - 1 do
    if s.[i] < '0' || s.[i] > '9' then invalid_arg "Bigint.of_string: invalid digit"
  done;
  let digits = len - start in
  if digits <= 18 then
    (* up to 10^18 - 1 < 2^62: parses natively and needs no demotion check *)
    Small (sign * int_of_string (String.sub s start digits))
  else begin
    let acc = ref zero in
    let ten9 = of_int 1_000_000_000 in
    let i = ref start in
    while !i < len do
      let chunk_len = Stdlib.min 9 (len - !i) in
      let chunk = String.sub s !i chunk_len in
      let mult = if chunk_len = 9 then ten9 else pow (of_int 10) chunk_len in
      acc := add (mul !acc mult) (of_int (int_of_string chunk));
      i := !i + chunk_len
    done;
    if sign < 0 then neg !acc else !acc
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
