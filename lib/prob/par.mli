(** Deterministic multicore Monte Carlo engine (OCaml 5 [Domain] fan-out).

    Every estimator in memrel is a loop of independent trials folded into an
    accumulator. This module runs such loops across domains while keeping
    the results {e bit-identical regardless of how many domains run} — the
    determinism that makes the rest of the test suite (and every number in
    EXPERIMENTS.md) reproducible from a seed is preserved on multicore.

    The scheme:

    - The [trials] are cut into fixed-size chunks. The schedule is keyed by
      the chunk index only: chunk [i] always processes the same trials with
      the same generator, no matter which domain executes it or in what
      order.
    - One [Rng.bits64] draw from the caller's generator yields a base
      entropy word; chunk [i] then runs on [Rng.substream base i], a pure
      function of [(base, i)]. No generator state is shared across domains.
    - Chunk accumulators are merged in chunk-index order by a left fold —
      the identical fold the sequential path performs — so even merges that
      are only associative up to rounding (float sums) reproduce exactly.

    Consequently [run ~jobs:1] and [run ~jobs:64] return equal results; the
    contract is checked in [test/prob/test_par.ml]. Note that the chunked
    schedule is a {e different} (equally valid) sampling order than a plain
    single-generator loop, so estimates differ from the pre-parallel
    sequential code by sampling noise only. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (the caller's domain also
    works), at least 1. *)

val default_chunk : int
(** Trials per chunk (4096): fine enough to balance across many domains,
    coarse enough that per-chunk setup is noise. The chunk size is part of
    the schedule key — changing it changes which substream a trial draws
    from, hence the sampled values (never the distribution). *)

val resolve_jobs : int option -> int
(** [resolve_jobs None] is {!default_jobs}[ ()]; [resolve_jobs (Some j)] is
    [j]. An explicit [j <= 0] raises [Invalid_argument] — the engine never
    silently clamps a nonsensical jobs count. *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  trials:int ->
  init:(unit -> 'acc) ->
  accumulate:('acc -> Rng.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  Rng.t ->
  'acc
(** [run ~trials ~init ~accumulate ~merge rng] folds [trials] independent
    trials into an accumulator, fanning out over [jobs] domains (default
    {!default_jobs}; [jobs:1] runs on the calling domain only, spawning
    nothing). [accumulate acc r] performs one trial drawing randomness from
    [r] and returns the updated accumulator (in-place mutation of [acc] is
    fine — each accumulator is owned by one domain). [merge] must combine
    two chunk accumulators; associativity up to the fixed fold order is
    enough. Laws: [merge (init ()) a = a] observationally, and [merge]
    must commute with [accumulate] over disjoint trial sets.

    Advances the caller's [rng] by exactly one [bits64] draw regardless of
    [jobs], [chunk], and [trials]. Raises [Invalid_argument] if [trials] or
    [chunk] is nonpositive. *)

val count : ?jobs:int -> ?chunk:int -> trials:int -> (Rng.t -> bool) -> Rng.t -> int
(** [count ~trials f rng] is the number of trials on which [f] returned
    [true] — the success counter of every Bernoulli estimator. *)

val sum_float : ?jobs:int -> ?chunk:int -> trials:int -> (Rng.t -> float) -> Rng.t -> float
(** [sum_float ~trials f rng] sums one float per trial (deterministically:
    the summation order is the fixed chunk schedule). *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [Array.map f a] with the elements evaluated across
    domains. [f] must be pure (it runs concurrently and in arbitrary
    order); the result order is the input order. Used for embarrassingly
    parallel analytic sweeps (e.g. scaling tables), not for Monte Carlo. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of {!map_array}. *)

(** {1 Streaming execution with adaptive stopping}

    [run_streaming] is {!run} restructured for the hot paths: the per-trial
    function is built once per worker domain ([worker ()] allocates whatever
    preallocated scratch the trial closure reuses, so the steady-state inner
    loop allocates nothing), and the chunk accumulators are folded
    {e incrementally} in schedule order, which lets the engine (a) stop at a
    chunk boundary once a predicate over the running accumulator holds,
    (b) report running results every few chunks, and (c) honor a {!Budget}.

    The schedule and the fold are identical to {!run} — one [bits64] draw
    keys the chunk substreams, merge is the left fold in chunk-index order —
    so a run without [stop]/[budget] returns a value bit-identical to {!run}
    with the same seed and chunk size, at any [jobs].

    Sequential-stopping determinism: [stop] is evaluated on the merged
    schedule-order {e prefix} each time the prefix extends, so the stopping
    chunk is the least [k] such that the predicate holds over chunks
    [0..k] — a pure function of (seed, schedule, predicate). Workers racing
    past the stopping point (or past a hole when the budget trips) have
    their chunks discarded, never merged: the stopping trial count and the
    returned value are jobs-invariant. On budget exhaustion the result is
    the merged contiguous prefix — a typed partial, like
    {!run_governed}. *)

type 'a streamed = {
  value : 'a;
      (** merged accumulator over the schedule-order prefix of completed
          chunks: all of them when the run finished, the prefix at the
          stopping point or at budget exhaustion otherwise *)
  trials_done : int;  (** trials covered by [value] *)
  chunks_done : int;  (** chunks merged into [value] *)
  target_met : bool;  (** the [stop] predicate ended the run *)
  exhausted : Budget.exhaustion option;
      (** [Some _] iff the budget tripped before completion/stop *)
}

val default_report_every : int
(** Report every 16 merged chunks (when [~report] is given). *)

val run_streaming :
  ?jobs:int ->
  ?chunk:int ->
  ?budget:Budget.t ->
  ?stop:(trials:int -> 'acc -> bool) ->
  ?report:(trials:int -> 'acc -> unit) ->
  ?report_every:int ->
  max_trials:int ->
  init:(unit -> 'acc) ->
  worker:(unit -> 'acc -> Rng.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  Rng.t ->
  'acc streamed
(** [run_streaming ~max_trials ~init ~worker ~merge rng] folds up to
    [max_trials] trials. [worker ()] runs once per worker domain and
    returns the per-trial accumulate function — allocate reusable scratch
    there, not per trial. [init] creates one accumulator per chunk (as in
    {!run}); [stop ~trials acc] is checked at chunk boundaries on the
    merged prefix; [report] is called every [report_every] merged chunks
    (under the scheduler lock when [jobs > 1] — keep it fast, and don't
    re-enter the engine from it). [budget] is checked before every chunk
    claim and charged one work unit per completed chunk.

    Advances the caller's [rng] by exactly one [bits64] draw. Raises
    [Invalid_argument] on nonpositive [max_trials]/[chunk]/
    [report_every]. *)

val count_streaming :
  ?jobs:int ->
  ?chunk:int ->
  ?budget:Budget.t ->
  ?target_width:float ->
  ?z:float ->
  ?report:(trials:int -> successes:int -> unit) ->
  ?report_every:int ->
  max_trials:int ->
  worker:(unit -> Rng.t -> bool) ->
  Rng.t ->
  int streamed
(** Streaming {!count} with Wilson-interval adaptive stopping: when
    [target_width] is given, the run stops at the first chunk boundary
    where the [z]-score (default 1.96, 95%) Wilson interval for the success
    probability has width [<= target_width]; otherwise it runs the full
    [max_trials]. [target_met] tells which. A run without
    [target_width]/[budget] equals {!count} exactly. Raises
    [Invalid_argument] on nonpositive [target_width]. *)

(** {1 Resource-governed execution}

    [run_governed] is {!run} under governance: a cooperative {!Budget}
    checked before every chunk claim, periodic {!Snapshot}-backed
    checkpoints, resume from a checkpoint, and worker-failure retry. It
    degrades gracefully — on budget exhaustion it returns whatever chunks
    completed (a typed partial result) instead of raising.

    Determinism contract: chunk [i]'s accumulator is a pure function of the
    schedule key [(base, i)] and the merge is a fixed left fold in chunk
    order, so (a) a complete governed run is bit-identical to {!run} with
    the same seed/chunk, on any jobs count; (b) kill + resume reproduces
    the uninterrupted result bit-for-bit; (c) a chunk retried after a
    worker failure — on any domain, any attempt — contributes bit-identical
    state. Only {e partial} results may differ across runs (which chunks
    finished before exhaustion is timing-dependent unless the budget is a
    deterministic work cap). *)

type fault = Crash | Wedge
    (** Injected worker failure modes (test-only): [Crash] raises inside the
        worker mid-chunk; [Wedge] simulates a worker dying silently — it
        stops taking work and its chunk is re-run after the join on the
        calling domain. *)

exception Injected_crash of { chunk : int; attempt : int }
(** The exception an injected [Crash] raises. *)

exception Retries_exhausted of { chunk : int; attempts : int; last_error : string }
(** A chunk failed [attempts] times (1 initial + [max_retries] retries). *)

exception Invalid_snapshot of string
(** Checkpoint file rejected: corrupted, truncated, wrong format version,
    wrong engine tag, or taken under different run parameters
    (seed/trials/chunk). The message says which. *)

type run_stats = {
  chunks_total : int;  (** chunks in the full schedule *)
  chunks_done : int;  (** chunks merged into the result (incl. resumed) *)
  chunks_resumed : int;  (** chunks loaded from the resume checkpoint *)
  trials_done : int;  (** trials covered by the merged chunks *)
  retries : int;  (** chunk re-attempts after injected/user failures *)
  worker_failures : int;  (** individual failure events observed *)
  checkpoints_written : int;
}

type 'a governed = {
  value : 'a;
      (** merged accumulator over the completed chunks — the full result
          when [exhausted = None], a partial one otherwise *)
  run_stats : run_stats;
  exhausted : Budget.exhaustion option;
      (** [Some _] iff the budget tripped before all chunks completed *)
}

val default_max_retries : int
(** 2 — a chunk may run up to 3 times before [Retries_exhausted]. *)

val default_checkpoint_every : int
(** Checkpoint after every 16 completed chunks (when [~checkpoint] is
    given); a final checkpoint is always written on return. *)

val run_governed :
  ?jobs:int ->
  ?chunk:int ->
  ?budget:Budget.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:string ->
  ?max_retries:int ->
  ?fault:(chunk:int -> attempt:int -> fault option) ->
  trials:int ->
  init:(unit -> 'acc) ->
  accumulate:('acc -> Rng.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  Rng.t ->
  'acc governed
(** [run_governed ~trials ~init ~accumulate ~merge rng] — {!run} with
    governance. Like {!run} it advances the caller's [rng] by exactly one
    [bits64] draw.

    - [budget]: checked before every chunk claim; one work unit is spent
      per completed chunk. On exhaustion, surviving workers stop and the
      completed chunks are merged into a partial [value] with
      [exhausted = Some _].
    - [checkpoint]: snapshot file, written atomically (tmp + rename) every
      [checkpoint_every] completed chunks and once on return.
    - [resume]: load a prior checkpoint and skip its chunks. The run must
      use the same seed, [trials] and [chunk]; anything else (or a damaged
      file) raises {!Invalid_snapshot}.
    - [fault]: test hook consulted before each chunk attempt. Crashed
      chunks retry in-worker; wedged workers stop, and their claimed and
      unclaimed chunks are re-run on the calling domain after the join.
      More than [max_retries] retries of one chunk raises
      {!Retries_exhausted}. User exceptions from [accumulate] are retried
      the same way (they count as worker failures).

    Raises [Invalid_argument] on nonpositive [trials]/[chunk]/
    [checkpoint_every], negative [max_retries], or [jobs <= 0]. *)

val count_governed :
  ?jobs:int ->
  ?chunk:int ->
  ?budget:Budget.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:string ->
  ?max_retries:int ->
  ?fault:(chunk:int -> attempt:int -> fault option) ->
  trials:int ->
  (Rng.t -> bool) ->
  Rng.t ->
  int governed
(** Governed {!count}: the success counter under budgets, checkpoints and
    fault injection. A complete governed count equals {!count} exactly. *)
