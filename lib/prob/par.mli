(** Deterministic multicore Monte Carlo engine (OCaml 5 [Domain] fan-out).

    Every estimator in memrel is a loop of independent trials folded into an
    accumulator. This module runs such loops across domains while keeping
    the results {e bit-identical regardless of how many domains run} — the
    determinism that makes the rest of the test suite (and every number in
    EXPERIMENTS.md) reproducible from a seed is preserved on multicore.

    The scheme:

    - The [trials] are cut into fixed-size chunks. The schedule is keyed by
      the chunk index only: chunk [i] always processes the same trials with
      the same generator, no matter which domain executes it or in what
      order.
    - One [Rng.bits64] draw from the caller's generator yields a base
      entropy word; chunk [i] then runs on [Rng.substream base i], a pure
      function of [(base, i)]. No generator state is shared across domains.
    - Chunk accumulators are merged in chunk-index order by a left fold —
      the identical fold the sequential path performs — so even merges that
      are only associative up to rounding (float sums) reproduce exactly.

    Consequently [run ~jobs:1] and [run ~jobs:64] return equal results; the
    contract is checked in [test/prob/test_par.ml]. Note that the chunked
    schedule is a {e different} (equally valid) sampling order than a plain
    single-generator loop, so estimates differ from the pre-parallel
    sequential code by sampling noise only. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (the caller's domain also
    works), at least 1. *)

val default_chunk : int
(** Trials per chunk (4096): fine enough to balance across many domains,
    coarse enough that per-chunk setup is noise. The chunk size is part of
    the schedule key — changing it changes which substream a trial draws
    from, hence the sampled values (never the distribution). *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  trials:int ->
  init:(unit -> 'acc) ->
  accumulate:('acc -> Rng.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  Rng.t ->
  'acc
(** [run ~trials ~init ~accumulate ~merge rng] folds [trials] independent
    trials into an accumulator, fanning out over [jobs] domains (default
    {!default_jobs}; [jobs:1] runs on the calling domain only, spawning
    nothing). [accumulate acc r] performs one trial drawing randomness from
    [r] and returns the updated accumulator (in-place mutation of [acc] is
    fine — each accumulator is owned by one domain). [merge] must combine
    two chunk accumulators; associativity up to the fixed fold order is
    enough. Laws: [merge (init ()) a = a] observationally, and [merge]
    must commute with [accumulate] over disjoint trial sets.

    Advances the caller's [rng] by exactly one [bits64] draw regardless of
    [jobs], [chunk], and [trials]. Raises [Invalid_argument] if [trials] or
    [chunk] is nonpositive. *)

val count : ?jobs:int -> ?chunk:int -> trials:int -> (Rng.t -> bool) -> Rng.t -> int
(** [count ~trials f rng] is the number of trials on which [f] returned
    [true] — the success counter of every Bernoulli estimator. *)

val sum_float : ?jobs:int -> ?chunk:int -> trials:int -> (Rng.t -> float) -> Rng.t -> float
(** [sum_float ~trials f rng] sums one float per trial (deterministically:
    the summation order is the fixed chunk schedule). *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [Array.map f a] with the elements evaluated across
    domains. [f] must be pure (it runs concurrently and in arbitrary
    order); the result order is the input order. Used for embarrassingly
    parallel analytic sweeps (e.g. scaling tables), not for Monte Carlo. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of {!map_array}. *)
