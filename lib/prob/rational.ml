module B = Bigint

type t = { n : B.t; d : B.t }

(* -- observability ----------------------------------------------------- *)

(* Same discipline as Bigint's counters: plain refs, advisory only. *)
type stats = {
  adds : int;
  add_coprime : int;
  muls : int;
  mul_coprime : int;
}

let c_adds = ref 0
let c_add_coprime = ref 0
let c_muls = ref 0
let c_mul_coprime = ref 0

let stats () =
  { adds = !c_adds; add_coprime = !c_add_coprime; muls = !c_muls; mul_coprime = !c_mul_coprime }

let reset_stats () =
  c_adds := 0;
  c_add_coprime := 0;
  c_muls := 0;
  c_mul_coprime := 0

(* -- construction ------------------------------------------------------ *)

let make_norm n d =
  (* assumes d > 0 *)
  if B.is_zero n then { n = B.zero; d = B.one }
  else begin
    let g = B.gcd n d in
    if B.is_one g then { n; d } else { n = B.div n g; d = B.div d g }
  end

let make n d =
  match B.sign d with
  | 0 -> raise Division_by_zero
  | s when s > 0 -> make_norm n d
  | _ -> make_norm (B.neg n) (B.neg d)

let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let two = { n = B.two; d = B.one }
let half = { n = B.one; d = B.two }

let of_int i = { n = B.of_int i; d = B.one }
let of_ints a b = make (B.of_int a) (B.of_int b)
let of_bigint n = { n; d = B.one }

let num t = t.n
let den t = t.d

(* -- Knuth 4.5.1 arithmetic -------------------------------------------- *)

(* Both operands are canonical (gcd(n,d) = 1, d > 0), which makes the
   classic reductions sound: for addition, gcd(t, (b/g1)*d) = gcd(t, g1)
   with g1 = gcd(b, d) and t = a*(d/g1) + c*(b/g1), so one small gcd
   replaces the seed's full-width gcd of the blown-up cross products; for
   multiplication the two cross-gcds cancel everything that could cancel,
   so the products below are already in lowest terms. In the paper's dyadic
   DPs the denominators are powers of two, so g1 is usually one of the
   denominators and the intermediates never leave the native-int range. *)

let add a b =
  if B.is_zero a.n then b
  else if B.is_zero b.n then a
  else begin
    incr c_adds;
    let g1 = B.gcd a.d b.d in
    if B.is_one g1 then begin
      incr c_add_coprime;
      { n = B.add (B.mul a.n b.d) (B.mul b.n a.d); d = B.mul a.d b.d }
    end
    else begin
      let bd = B.div a.d g1 and dd = B.div b.d g1 in
      let t = B.add (B.mul a.n dd) (B.mul b.n bd) in
      if B.is_zero t then zero
      else begin
        let g2 = B.gcd t g1 in
        if B.is_one g2 then { n = t; d = B.mul bd b.d }
        else { n = B.div t g2; d = B.mul bd (B.div b.d g2) }
      end
    end
  end

let neg a = { a with n = B.neg a.n }
let sub a b = add a (neg b)
let abs a = { a with n = B.abs a.n }

let mul a b =
  if B.is_zero a.n || B.is_zero b.n then zero
  else begin
    incr c_muls;
    let g1 = B.gcd a.n b.d and g2 = B.gcd b.n a.d in
    match (B.is_one g1, B.is_one g2) with
    | true, true ->
      incr c_mul_coprime;
      { n = B.mul a.n b.n; d = B.mul a.d b.d }
    | _ ->
      { n = B.mul (B.div a.n g1) (B.div b.n g2);
        d = B.mul (B.div a.d g2) (B.div b.d g1) }
  end

let inv a =
  match B.sign a.n with
  | 0 -> raise Division_by_zero
  | s when s > 0 -> { n = a.d; d = a.n }
  | _ -> { n = B.neg a.d; d = B.neg a.n }

let div a b = mul a (inv b)

let mul_int a k = make_norm (B.mul_int a.n k) a.d
let add_int a k = add a (of_int k)

let pow x k =
  if k >= 0 then { n = B.pow x.n k; d = B.pow x.d k }
  else inv { n = B.pow x.n (-k); d = B.pow x.d (-k) }

let pow2 k = if k >= 0 then { n = B.pow2 k; d = B.one } else { n = B.one; d = B.pow2 (-k) }

let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)
let equal a b = B.equal a.n b.n && B.equal a.d b.d
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign a = B.sign a.n
let is_zero a = B.is_zero a.n

let to_float t =
  (* Scale the numerator so the integer quotient retains ~60 bits of
     precision, then divide in float and undo the scaling. *)
  if B.is_zero t.n then 0.0
  else begin
    let shift = B.num_bits t.d + 60 - B.num_bits (B.abs t.n) in
    let shift = if shift < 0 then 0 else shift in
    let q = B.div (B.shift_left t.n shift) t.d in
    B.to_float q *. Float.pow 2.0 (float_of_int (-shift))
  end

let of_float_dyadic f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float_dyadic: not finite";
  if f = 0.0 then zero else
  let m, e = Float.frexp f in
  (* m in [0.5, 1); m * 2^53 is integral *)
  let mi = Int64.of_float (m *. 0x1.0p53) in
  let n = B.of_string (Int64.to_string mi) in
  let k = e - 53 in
  if k >= 0 then { n = B.shift_left n k; d = B.one } else make n (B.pow2 (-k))

let to_string t =
  if B.is_one t.d then B.to_string t.n
  else B.to_string t.n ^ "/" ^ B.to_string t.d

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (B.of_string s)
  | Some i ->
    make (B.of_string (String.sub s 0 i)) (B.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let sum l = List.fold_left add zero l
let product l = List.fold_left mul one l

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* -- the seed implementation, kept for differential tests and benches -- *)

module Reference = struct
  module B = Bigint_reference

  type t = { n : B.t; d : B.t }

  let make_norm n d =
    (* assumes d > 0 *)
    if B.is_zero n then { n = B.zero; d = B.one }
    else begin
      let g = B.gcd n d in
      if B.is_one g then { n; d } else { n = B.div n g; d = B.div d g }
    end

  let make n d =
    match B.sign d with
    | 0 -> raise Division_by_zero
    | s when s > 0 -> make_norm n d
    | _ -> make_norm (B.neg n) (B.neg d)

  let zero = { n = B.zero; d = B.one }
  let one = { n = B.one; d = B.one }
  let two = { n = B.two; d = B.one }
  let half = { n = B.one; d = B.two }

  let of_int i = { n = B.of_int i; d = B.one }
  let of_ints a b = make (B.of_int a) (B.of_int b)

  let add a b = make_norm (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)
  let sub a b = make_norm (B.sub (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)
  let mul a b = make_norm (B.mul a.n b.n) (B.mul a.d b.d)
  let neg a = { a with n = B.neg a.n }
  let abs a = { a with n = B.abs a.n }

  let inv a =
    match B.sign a.n with
    | 0 -> raise Division_by_zero
    | s when s > 0 -> { n = a.d; d = a.n }
    | _ -> { n = B.neg a.d; d = B.neg a.n }

  let div a b = mul a (inv b)

  let mul_int a k = make_norm (B.mul_int a.n k) a.d
  let add_int a k = add a (of_int k)

  let pow x k =
    if k >= 0 then { n = B.pow x.n k; d = B.pow x.d k }
    else inv { n = B.pow x.n (-k); d = B.pow x.d (-k) }

  let pow2 k = if k >= 0 then { n = B.pow2 k; d = B.one } else { n = B.one; d = B.pow2 (-k) }

  let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)
  let equal a b = B.equal a.n b.n && B.equal a.d b.d
  let min a b = if compare a b <= 0 then a else b
  let max a b = if compare a b >= 0 then a else b
  let sign a = B.sign a.n
  let is_zero a = B.is_zero a.n

  let to_float t =
    if B.is_zero t.n then 0.0
    else begin
      let shift = B.num_bits t.d + 60 - B.num_bits (B.abs t.n) in
      let shift = if shift < 0 then 0 else shift in
      let q = B.div (B.shift_left t.n shift) t.d in
      B.to_float q *. Float.pow 2.0 (float_of_int (-shift))
    end

  let of_float_dyadic f =
    if not (Float.is_finite f) then invalid_arg "Rational.of_float_dyadic: not finite";
    if f = 0.0 then zero else
    let m, e = Float.frexp f in
    let mi = Int64.of_float (m *. 0x1.0p53) in
    let n = B.of_string (Int64.to_string mi) in
    let k = e - 53 in
    if k >= 0 then { n = B.shift_left n k; d = B.one } else make n (B.pow2 (-k))

  let to_string t =
    if B.is_one t.d then B.to_string t.n
    else B.to_string t.n ^ "/" ^ B.to_string t.d

  let of_string s =
    match String.index_opt s '/' with
    | None -> { n = B.of_string s; d = B.one }
    | Some i ->
      make (B.of_string (String.sub s 0 i))
        (B.of_string (String.sub s (i + 1) (String.length s - i - 1)))

  let sum l = List.fold_left add zero l
  let product l = List.fold_left mul one l

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end
