(** Deterministic fault injection over a syscall facade.

    All snapshot-container IO (result-cache entries, extmem spill runs and
    manifests, governed checkpoints) goes through {!read_file},
    {!write_file} and {!rename}. With no plan installed they are plain
    syscalls behind EINTR/short-transfer retry loops. An installed
    {!plan} deals seeded, replayable faults into those operations: the
    same seed against the same operation sequence deals the same faults,
    and {!trace} exposes the dealt sequence for cross-run comparison.

    Faults are either absorbed by a clean retry (EINTR, short transfers),
    surfaced as the typed one-line {!Io} error (ENOSPC), made detectable
    by the container CRC (torn renames), or simulate kill -9 debris
    ({!Crash_point}). Nothing is ever silently wrong. *)

type site = Read | Write | Rename

val site_to_string : site -> string

type fault =
  | Eintr  (** transient: the syscall raises EINTR once, the loop retries *)
  | Short  (** transient: a partial transfer, the loop continues *)
  | Enospc  (** hard: the operation fails with a typed {!Io} error *)
  | Torn  (** rename only: the destination receives a CRC-invalid image *)
  | Crash  (** kill -9 at this instant: partial debris + {!Crash_point} *)

val fault_to_string : fault -> string

exception Crash_point of string
(** A simulated kill -9 mid-operation. Only a chaos harness should catch
    it; everything below must leave recoverable state behind. *)

exception Io of string
(** A typed one-line IO failure, real or injected. *)

type event = { op : int; site : site; path : string; fault : fault }

type stats = {
  ops : int;  (** facade operations that consulted the plan *)
  eintr : int;
  short : int;
  enospc : int;
  torn : int;
  crashes : int;
}

(** {1 Plans} *)

type plan

val plan :
  ?eintr:float ->
  ?short:float ->
  ?enospc:float ->
  ?torn:float ->
  ?crash:float ->
  seed:int ->
  unit ->
  plan
(** A rate-based plan: each facade operation draws once from a splitmix64
    stream seeded by [seed] and is dealt at most one fault. Rates are
    probabilities in [0, 1]; kinds inapplicable to a site are skipped. *)

val plan_rate : seed:int -> float -> plan
(** The single-knob mix the CLI's [--fault-rate] expands to: 35% of
    [rate] each to EINTR and short transfers, 15% each to ENOSPC and torn
    renames, no in-process crash points (crash drills are real kill -9). *)

val script : (site * int * fault) list -> seed:int -> plan
(** Deal exactly the listed faults: [(site, n, fault)] hits the [n]th
    (1-based) operation of [site]. Raises [Invalid_argument] on a kind
    inapplicable to its site. [seed] feeds cut points for torn/crash. *)

val seed_of : plan -> int
val stats : plan -> stats
val faults_dealt : plan -> int

val trace : plan -> event list
(** The dealt faults in operation order — equal traces for equal seeds
    over equal operation sequences is the replayability contract. *)

val trace_to_string : event list -> string

(** {1 Installation} *)

val install : plan -> unit
(** Make [plan] the process-global fault source. Plan state is
    mutex-guarded; multi-domain callers each observe a plan-order draw. *)

val clear : unit -> unit
val installed : unit -> plan option

val with_plan : plan -> (unit -> 'a) -> 'a
(** [install], run, [clear] — exception-safe. *)

(** {1 The facade} *)

val read_file : string -> string
(** Whole-file read. Raises {!Io} on failure. *)

val write_file : path:string -> string -> unit
(** Whole-file create/truncate write. Raises {!Io} or {!Crash_point}. *)

val rename : src:string -> dst:string -> unit
(** Rename, the commit point of every tmp+rename write. Raises {!Io},
    {!Crash_point}, or silently installs a torn destination that the
    container CRC will reject. *)

val crash_site : string -> unit
(** A named kill-at-a-seam drill point (extmem commits its per-level
    manifest through one): no-op unless the plan deals [Crash] to the
    next rename-class operation. *)
