(* State layout: the four xoshiro256++ words live in an int64 Bigarray
   rather than mutable record fields. Mutable [int64] record fields are
   boxed — every store would allocate a fresh 3-word custom block, which
   made the generator the dominant allocation in the Monte Carlo hot loops.
   [Array1.unsafe_get]/[unsafe_set] on an int64 Bigarray compile to unboxed
   loads/stores, and with [bits64] marked [@inline] the intermediate words
   never materialize on the heap: [bool]/[int]/[bernoulli_scaled]/
   [geometric_half] allocate nothing at all. The output bit stream is
   unchanged — only the state representation moved. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* splitmix64: used only to expand a seed into the four xoshiro words, per
   the generator authors' recommendation. *)
let splitmix64_next st =
  let open Int64 in
  st := add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* expand a splitmix state into the four xoshiro words *)
let of_splitmix st =
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  let t = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout 4 in
  (* xoshiro must not start from the all-zero state; splitmix output is only
     all-zero with negligible probability, but guard anyway. *)
  Bigarray.Array1.set t 0 (if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s0);
  Bigarray.Array1.set t 1 s1;
  Bigarray.Array1.set t 2 s2;
  Bigarray.Array1.set t 3 s3;
  t

let create seed = of_splitmix (ref (Int64.of_int seed))

let copy t =
  let u = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout 4 in
  Bigarray.Array1.blit t u;
  u

let[@inline] rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++. The [(t : t)] annotation is load-bearing: without it the
   kind/layout parameters stay polymorphic and the Array1 primitives compile
   to the generic (boxing) bigarray access instead of unboxed int64
   loads/stores. *)
let[@inline] bits64 (t : t) =
  let open Int64 in
  let s0 = Bigarray.Array1.unsafe_get t 0 in
  let s1 = Bigarray.Array1.unsafe_get t 1 in
  let s2 = Bigarray.Array1.unsafe_get t 2 in
  let s3 = Bigarray.Array1.unsafe_get t 3 in
  let result = add (rotl (add s0 s3) 23) s0 in
  let tt = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tt in
  let s3 = rotl s3 45 in
  Bigarray.Array1.unsafe_set t 0 s0;
  Bigarray.Array1.unsafe_set t 1 s1;
  Bigarray.Array1.unsafe_set t 2 s2;
  Bigarray.Array1.unsafe_set t 3 s3;
  result

let split t = of_splitmix (ref (bits64 t))

let substream base i =
  (* hash the stream index through splitmix64 (a bijection on int64) before
     combining with the base entropy, so that consecutive indices land on
     unrelated splitmix states and the four seed words of stream i share
     nothing with those of stream i+1 *)
  let h = splitmix64_next (ref (Int64.of_int i)) in
  of_splitmix (ref (Int64.logxor base h))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask the low bits *)
    Int64.to_int (bits64 t) land (bound - 1)
  else begin
    (* rejection sampling on 62 usable bits to avoid modulo bias *)
    let mask = (1 lsl 62) - 1 in
    let limit = mask / bound * bound in
    let rec draw () =
      let v = Int64.to_int (bits64 t) land mask in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let[@inline] float t =
  (* top 53 bits scaled into [0,1) *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1.0p-53

let[@inline] bool t = Int64.to_int (bits64 t) land 1 = 1

let bernoulli t p = float t < p

(* [bernoulli t p] compares [v *. 2^-53 < p] with [v] the top 53 bits of one
   word. Both scalings by a power of two are exact, so the comparison over
   the reals is [v < p *. 2^53]; for the integer [v] that is exactly
   [v < ceil (p *. 2^53)]. Precomputing that integer threshold turns the
   Bernoulli draw into an immediate-int comparison: no boxed float crosses
   the call, and the verdict is bit-identical to [bernoulli]. *)
let scale_probability p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Rng.scale_probability: p out of [0,1]";
  int_of_float (Float.ceil (p *. 0x1.0p53))

let[@inline] bernoulli_scaled t threshold =
  Int64.to_int (Int64.shift_right_logical (bits64 t) 11) < threshold

let geometric_half t =
  (* Count heads before the first tail, consuming one 64-bit word at a time.
     Each word contributes its count of leading one-bits; a non-full run
     terminates the count. Exact (no float rounding) for all practical k.
     The bit counting runs on a native int (the low 63 bits): if those are
     all ones yet the word is not all-ones, bit 63 is the terminating zero
     and the count 63 is already correct. *)
  let acc = ref 0 in
  let stop = ref false in
  while not !stop do
    let w = bits64 t in
    if w = -1L then acc := !acc + 64
    else begin
      let wi = Int64.to_int w in
      let i = ref 0 in
      while !i < 63 && (wi lsr !i) land 1 = 1 do incr i done;
      acc := !acc + !i;
      stop := true
    end
  done;
  !acc

let geometric t p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1. then 0
  else if p = 0.5 then geometric_half t
  else begin
    let u = 1. -. float t (* in (0,1] *) in
    int_of_float (Float.floor (log u /. log (1. -. p)))
  end

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
