type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand a seed into the four xoshiro words, per
   the generator authors' recommendation. *)
let splitmix64_next st =
  let open Int64 in
  st := add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* expand a splitmix state into the four xoshiro words *)
let of_splitmix st =
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  (* xoshiro must not start from the all-zero state; splitmix output is only
     all-zero with negligible probability, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let create seed = of_splitmix (ref (Int64.of_int seed))

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tt = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_splitmix (ref (bits64 t))

let substream base i =
  (* hash the stream index through splitmix64 (a bijection on int64) before
     combining with the base entropy, so that consecutive indices land on
     unrelated splitmix states and the four seed words of stream i share
     nothing with those of stream i+1 *)
  let h = splitmix64_next (ref (Int64.of_int i)) in
  of_splitmix (ref (Int64.logxor base h))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask the low bits *)
    Int64.to_int (bits64 t) land (bound - 1)
  else begin
    (* rejection sampling on 62 usable bits to avoid modulo bias *)
    let mask = (1 lsl 62) - 1 in
    let limit = mask / bound * bound in
    let rec draw () =
      let v = Int64.to_int (bits64 t) land mask in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let float t =
  (* top 53 bits scaled into [0,1) *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1.0p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t < p

let geometric_half t =
  (* Count heads before the first tail, consuming one 64-bit word at a time.
     Each word contributes its count of leading one-bits; a non-full run
     terminates the count. Exact (no float rounding) for all practical k. *)
  let rec go acc =
    let w = bits64 t in
    if w = -1L then go (acc + 64)
    else begin
      (* count trailing... we want consecutive 1s from bit 0 upward *)
      let rec leading i = if i < 64 && Int64.logand (Int64.shift_right_logical w i) 1L = 1L then leading (i + 1) else i in
      acc + leading 0
    end
  in
  go 0

let geometric t p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1. then 0
  else if p = 0.5 then geometric_half t
  else begin
    let u = 1. -. float t (* in (0,1] *) in
    int_of_float (Float.floor (log u /. log (1. -. p)))
  end

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
