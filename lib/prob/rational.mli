(** Exact rational arithmetic over {!Bigint}.

    Every closed-form constant in the paper (1/6, 7/54, 58/441, 2/21, 4/7,
    c(n) = 2 / prod (1 - 2^-i), the Theorem 5.1 permutation sum, ...) is a
    rational, and the whole point of reproducing a theory paper is to land on
    those constants exactly rather than to within float noise. Values are
    kept normalized: positive denominator, gcd(num, den) = 1.

    Addition and multiplication use the Knuth 4.5.1 reductions (gcd of the
    denominators before cross-multiplying, cross-gcds before multiplying),
    which keep intermediates at canonical size instead of gcd-ing full-width
    products after the fact — the seed behaviour, preserved as
    {!Reference}. *)

type t
(** A normalized rational number. *)

val zero : t
val one : t
val two : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is [num/den], normalized.
    Raises [Division_by_zero] if [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is the rational [a/b]. *)

val of_bigint : Bigint.t -> t

val num : t -> Bigint.t
(** Numerator (sign-carrying). *)

val den : t -> Bigint.t
(** Denominator (always positive). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t
(** Raises [Division_by_zero] on [inv zero]. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow x k] for any integer [k] (negative exponents invert; [pow zero k]
    with [k < 0] raises [Division_by_zero]). *)

val pow2 : int -> t
(** [pow2 k] is the rational [2^k], for any sign of [k]. Heavily used: the
    paper's probabilities are dyadic almost everywhere. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int
val is_zero : t -> bool

val to_float : t -> float
(** Nearest float, via a 64-bit-safe scaled division. *)

val of_float_dyadic : float -> t
(** [of_float_dyadic f] is the exact rational value of the float [f]
    (every finite float is a dyadic rational). Raises [Invalid_argument]
    on NaN or infinities. *)

val to_string : t -> string
(** ["num/den"], or just ["num"] when the denominator is 1. *)

val of_string : string -> t
(** Parses ["a/b"] or ["a"]. *)

val sum : t list -> t
val product : t list -> t

val pp : Format.formatter -> t -> unit

(** {1 Observability}

    Advisory counters (plain refs — see {!Bigint.stats} for the domain
    semantics). [add_coprime] / [mul_coprime] count operations where the
    Knuth reductions found nothing to cancel, i.e. where the classic
    formulas were already optimal. *)

type stats = {
  adds : int;  (** nonzero additions performed *)
  add_coprime : int;  (** additions with coprime denominators *)
  muls : int;  (** nonzero multiplications performed *)
  mul_coprime : int;  (** multiplications with both cross-gcds = 1 *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** The seed implementation — naive cross-multiply-then-normalize over
    {!Bigint.Reference} — for differential tests and fast-vs-reference
    benchmarks. Satisfies {!Sigs.RATIONAL}. *)
module Reference : Sigs.RATIONAL
