(* Deterministic fault injection over a syscall facade.

   Every snapshot-container byte the system persists — result-cache
   entries, extmem spill runs and manifests, governed-engine checkpoints —
   travels through the three facade operations below ([read_file],
   [write_file], [rename]). With no plan installed the facade is the plain
   syscall with an EINTR/short-transfer retry loop and zero bookkeeping.
   With a plan installed, each operation consults it and may be dealt a
   fault:

     Eintr   the underlying read/write raises EINTR once; the facade's
             retry loop absorbs it (counted, invisible to the caller)
     Short   the underlying read/write transfers only part of the buffer;
             the loop continues from where it stopped (counted, invisible)
     Enospc  the operation fails with ENOSPC; the facade raises [Io] and
             the caller sees a typed one-line error
     Torn    (rename only) the source file is truncated at a seeded point
             before the rename — modelling a crash on a filesystem whose
             rename is not atomic; the destination exists but its CRC
             cannot verify, so readers repair instead of trusting it
     Crash   part of the buffer is written, then [Crash_point] is raised —
             modelling kill -9 at the worst instant; nothing is cleaned
             up, debris stays exactly as a real crash would leave it

   Plans are replayable: a plan is a splitmix64 stream seeded by the
   caller plus per-site operation counters, so the same seed against the
   same operation sequence deals the same faults, and [trace] returns the
   dealt sequence for cross-run comparison. Scripted plans deal a fault at
   the nth operation of a given site exactly, for pinpoint tests.

   The installed plan is global (an [Atomic]) and its decision draw is
   mutex-guarded: worker domains racing through the facade each get a
   deterministic plan-order draw, though the interleaving across domains
   is theirs. Single-domain runs are fully deterministic. *)

type site = Read | Write | Rename

let site_to_string = function Read -> "read" | Write -> "write" | Rename -> "rename"

type fault = Eintr | Short | Enospc | Torn | Crash

let fault_to_string = function
  | Eintr -> "eintr"
  | Short -> "short"
  | Enospc -> "enospc"
  | Torn -> "torn"
  | Crash -> "crash"

exception Crash_point of string
(** A simulated kill -9: raised mid-operation with debris left in place.
    Nothing below the chaos harness should catch it. *)

exception Io of string
(** A typed one-line IO failure (real or injected). *)

type event = { op : int; site : site; path : string; fault : fault }

type stats = {
  ops : int;
  eintr : int;
  short : int;
  enospc : int;
  torn : int;
  crashes : int;
}

type rates = { r_eintr : float; r_short : float; r_enospc : float; r_torn : float; r_crash : float }

type plan = {
  mutex : Mutex.t;
  rng : Rng.t;
  seed : int;
  rates : rates;
  script : (site * int * fault) list;
  (* per-site 1-based operation counters *)
  mutable n_read : int;
  mutable n_write : int;
  mutable n_rename : int;
  mutable ops : int;
  mutable dealt : event list; (* reversed trace *)
}

let plan ?(eintr = 0.) ?(short = 0.) ?(enospc = 0.) ?(torn = 0.) ?(crash = 0.) ~seed () =
  List.iter
    (fun r -> if r < 0. || r > 1. then invalid_arg "Faultio.plan: rates must be in [0, 1]")
    [ eintr; short; enospc; torn; crash ];
  {
    mutex = Mutex.create ();
    rng = Rng.create seed;
    seed;
    rates = { r_eintr = eintr; r_short = short; r_enospc = enospc; r_torn = torn; r_crash = crash };
    script = [];
    n_read = 0;
    n_write = 0;
    n_rename = 0;
    ops = 0;
    dealt = [];
  }

(* the standard mix a single --fault-rate knob expands to: transient faults
   dominate, hard failures and torn renames are rarer, and crash points are
   dealt only by explicit rates or scripts (a daemon's crash drill is a
   real kill -9, not an in-process exception) *)
let plan_rate ~seed rate =
  if rate < 0. || rate > 1. then invalid_arg "Faultio.plan_rate: rate must be in [0, 1]";
  plan ~seed ~eintr:(0.35 *. rate) ~short:(0.35 *. rate) ~enospc:(0.15 *. rate)
    ~torn:(0.15 *. rate) ()

let script entries ~seed =
  List.iter
    (fun (site, n, fault) ->
      if n < 1 then invalid_arg "Faultio.script: operation numbers are 1-based";
      match (site, fault) with
      | Read, (Enospc | Torn | Crash) ->
        invalid_arg "Faultio.script: reads can only be dealt Eintr or Short"
      | Rename, (Eintr | Short) ->
        invalid_arg "Faultio.script: renames can only be dealt Enospc, Torn or Crash"
      | _ -> ())
    entries;
  { (plan ~seed ()) with script = entries }

let seed_of p = p.seed

let stats p =
  Mutex.lock p.mutex;
  let count f = List.length (List.filter (fun e -> e.fault = f) p.dealt) in
  let s =
    {
      ops = p.ops;
      eintr = count Eintr;
      short = count Short;
      enospc = count Enospc;
      torn = count Torn;
      crashes = count Crash;
    }
  in
  Mutex.unlock p.mutex;
  s

let faults_dealt p =
  let s = stats p in
  s.eintr + s.short + s.enospc + s.torn + s.crashes

let trace p =
  Mutex.lock p.mutex;
  let t = List.rev p.dealt in
  Mutex.unlock p.mutex;
  t

let trace_to_string t =
  String.concat ";"
    (List.map
       (fun e -> Printf.sprintf "%d:%s:%s" e.op (site_to_string e.site) (fault_to_string e.fault))
       t)

(* -- installation -------------------------------------------------------- *)

let current : plan option Atomic.t = Atomic.make None

let install p = Atomic.set current (Some p)
let clear () = Atomic.set current None
let installed () = Atomic.get current

let with_plan p f =
  install p;
  Fun.protect ~finally:clear f

(* -- decisions ----------------------------------------------------------- *)

(* one draw per operation, partitioned over the site's applicable kinds in
   a fixed order — the draw count per operation is constant, so the
   decision stream depends only on (seed, operation sequence) *)
let decide_locked p site path =
  p.ops <- p.ops + 1;
  let nth =
    match site with
    | Read ->
      p.n_read <- p.n_read + 1;
      p.n_read
    | Write ->
      p.n_write <- p.n_write + 1;
      p.n_write
    | Rename ->
      p.n_rename <- p.n_rename + 1;
      p.n_rename
  in
  let u = Rng.float p.rng in
  let scripted =
    List.find_map (fun (s, n, f) -> if s = site && n = nth then Some f else None) p.script
  in
  let dealt =
    match scripted with
    | Some f -> Some f
    | None ->
      let r = p.rates in
      let applicable =
        match site with
        | Read -> [ (Eintr, r.r_eintr); (Short, r.r_short) ]
        | Write ->
          [ (Eintr, r.r_eintr); (Short, r.r_short); (Enospc, r.r_enospc); (Crash, r.r_crash) ]
        | Rename -> [ (Enospc, r.r_enospc); (Torn, r.r_torn); (Crash, r.r_crash) ]
      in
      let rec pick acc = function
        | [] -> None
        | (f, rate) :: rest -> if u < acc +. rate then Some f else pick (acc +. rate) rest
      in
      pick 0. applicable
  in
  (match dealt with
   | Some fault -> p.dealt <- { op = p.ops; site; path; fault } :: p.dealt
   | None -> ());
  dealt

let decide site path =
  match Atomic.get current with
  | None -> None
  | Some p ->
    Mutex.lock p.mutex;
    let d = decide_locked p site path in
    Mutex.unlock p.mutex;
    d

(* a seeded cut point for torn/crash faults: derived from the plan rng so
   replays tear at the same offset *)
let cut_point len =
  if len <= 1 then 0
  else
    match Atomic.get current with
    | None -> len / 2
    | Some p ->
      Mutex.lock p.mutex;
      let c = Rng.int p.rng len in
      Mutex.unlock p.mutex;
      c

(* -- the facade ---------------------------------------------------------- *)

let io_error op path e = raise (Io (Printf.sprintf "%s %s: %s" op path (Unix.error_message e)))

(* injected faults enter through these two wrappers; the loops below retry
   EINTR and short transfers whether they are injected or real *)
let injected_write fd buf pos len ~path =
  match decide Write path with
  | Some Eintr -> raise (Unix.Unix_error (Unix.EINTR, "write", path))
  | Some Short when len > 1 -> Unix.write fd buf pos (1 + ((len - 1) / 2))
  | Some Enospc -> raise (Unix.Unix_error (Unix.ENOSPC, "write", path))
  | Some Crash ->
    let cut = cut_point len in
    if cut > 0 then ignore (Unix.write fd buf pos cut);
    raise (Crash_point (Printf.sprintf "write %s" path))
  | _ -> Unix.write fd buf pos len

let injected_read fd buf pos len ~path =
  match decide Read path with
  | Some Eintr -> raise (Unix.Unix_error (Unix.EINTR, "read", path))
  | Some Short when len > 1 -> Unix.read fd buf pos (1 + ((len - 1) / 2))
  | _ -> Unix.read fd buf pos len

(* a pathological plan (eintr=1.) would otherwise spin forever: after this
   many consecutive EINTRs the operation becomes a typed error, which is
   still "a typed one-line error or a clean retry", never a hang *)
let max_consecutive_eintr = 64

let write_file ~path contents =
  let fd =
    try Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) -> io_error "open" path e
  in
  (* close exactly once: a second Unix.close on a recycled descriptor
     number would close another domain's file *)
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  let buf = Bytes.unsafe_of_string contents in
  let rec loop pos eintrs =
    if pos < Bytes.length buf then
      match injected_write fd buf pos (Bytes.length buf - pos) ~path with
      | n -> loop (pos + n) 0
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if eintrs + 1 >= max_consecutive_eintr then io_error "write" path Unix.EINTR
        else loop pos (eintrs + 1)
      | exception Unix.Unix_error (e, _, _) -> io_error "write" path e
  in
  (* on any failure — typed Io or a Crash_point leaving partial debris —
     release the descriptor; this process lives on even when the write
     "died" *)
  Fun.protect ~finally:close (fun () -> loop 0 0)

let read_file path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) -> io_error "open" path e
  in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally:close @@ fun () ->
  let chunk = 65536 in
  let buf = Bytes.create chunk in
  let out = Buffer.create chunk in
  let rec loop eintrs =
    match injected_read fd buf 0 chunk ~path with
    | 0 -> Buffer.contents out
    | n ->
      Buffer.add_subbytes out buf 0 n;
      loop 0
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if eintrs + 1 >= max_consecutive_eintr then io_error "read" path Unix.EINTR
      else loop (eintrs + 1)
    | exception Unix.Unix_error (e, _, _) -> io_error "read" path e
  in
  loop 0

let truncate_for_tear path =
  match read_file path with
  | contents ->
    let cut = cut_point (String.length contents) in
    (* bypass injection for the tear itself: the tear IS the fault *)
    let oc = open_out_bin path in
    output_string oc (String.sub contents 0 cut);
    close_out oc
  | exception Io _ -> ()

let rename ~src ~dst =
  (match decide Rename dst with
   | Some Enospc -> io_error "rename" dst Unix.ENOSPC
   | Some Torn ->
     (* model a crash mid-rename on a non-atomic filesystem: the
        destination receives a truncated image whose CRC cannot verify *)
     truncate_for_tear src
   | Some Crash -> raise (Crash_point (Printf.sprintf "rename %s" dst))
   | _ -> ());
  try Unix.rename src dst with Unix.Unix_error (e, _, _) -> io_error "rename" dst e

(* a named crash site for engines that want kill-at-a-seam drills (extmem
   manifests commit through this): a no-op unless the installed plan deals
   Crash to the next rename-class operation *)
let crash_site name =
  match decide Rename name with
  | Some Crash -> raise (Crash_point name)
  | Some _ | None -> ()
