let default_chunk = 4096

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* explicit jobs values must be positive; only the absent default is
   resolved automatically *)
let resolve_jobs = function
  | None -> default_jobs ()
  | Some j -> if j <= 0 then invalid_arg "Par: jobs must be positive" else j

(* Run [f w] on [workers] domains with [w = 0 .. workers - 1], worker 0 on
   the calling domain. Joins every spawned domain before re-raising any
   exception, so no domain is ever leaked. *)
let fan_out ~workers f =
  if workers <= 1 then f 0
  else begin
    let spawned = List.init (workers - 1) (fun w -> Domain.spawn (fun () -> f (w + 1))) in
    let here = try Ok (f 0) with e -> Error e in
    let joined = List.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned in
    List.iter (function Error e -> raise e | Ok () -> ()) (here :: joined)
  end

(* -- resource governance ----------------------------------------------- *)

type fault = Crash | Wedge

exception Injected_crash of { chunk : int; attempt : int }

exception Retries_exhausted of { chunk : int; attempts : int; last_error : string }

exception Invalid_snapshot of string

type run_stats = {
  chunks_total : int;
  chunks_done : int;
  chunks_resumed : int;
  trials_done : int;
  retries : int;
  worker_failures : int;
  checkpoints_written : int;
}

type 'a governed = {
  value : 'a;
  run_stats : run_stats;
  exhausted : Budget.exhaustion option;
}

let default_max_retries = 2

let default_checkpoint_every = 16

(* checkpoint payload: the schedule key plus every completed chunk's
   accumulator. Chunk accumulators are pure functions of (base, id), so
   this is the entire state of a run — no RNG positions beyond [base] need
   saving (a chunk is either absent or complete, never half-drawn). *)
type 'acc checkpoint_payload = {
  cp_base : int64;
  cp_trials : int;
  cp_chunk : int;
  cp_done : (int * 'acc) array; (* sorted by chunk id, ids distinct *)
}

let snapshot_tag = "par/chunks"

let save_checkpoint ~file ~base ~trials ~chunk done_list =
  let cp_done = Array.of_list done_list in
  Array.sort (fun (a, _) (b, _) -> compare a b) cp_done;
  let payload =
    Marshal.to_string { cp_base = base; cp_trials = trials; cp_chunk = chunk; cp_done } []
  in
  match Snapshot.write ~file ~tag:snapshot_tag payload with
  | Ok () -> ()
  | Error e ->
    raise (Invalid_snapshot ("checkpoint write failed: " ^ Snapshot.error_to_string e))

let load_checkpoint ~file ~base ~trials ~chunk ~n_chunks =
  match Snapshot.read ~file ~tag:snapshot_tag with
  | Error e -> raise (Invalid_snapshot (Snapshot.error_to_string e))
  | Ok payload ->
    let cp =
      try (Marshal.from_string payload 0 : _ checkpoint_payload)
      with _ -> raise (Invalid_snapshot "undecodable checkpoint payload")
    in
    if not (Int64.equal cp.cp_base base) then
      raise
        (Invalid_snapshot
           "checkpoint was taken from a different RNG stream (same seed required to resume)");
    if cp.cp_trials <> trials then
      raise
        (Invalid_snapshot
           (Printf.sprintf "checkpoint is for trials=%d, this run asks for trials=%d"
              cp.cp_trials trials));
    if cp.cp_chunk <> chunk then
      raise
        (Invalid_snapshot
           (Printf.sprintf "checkpoint is for chunk=%d, this run asks for chunk=%d" cp.cp_chunk
              chunk));
    let seen = Hashtbl.create (Array.length cp.cp_done) in
    Array.iter
      (fun (id, _) ->
        if id < 0 || id >= n_chunks || Hashtbl.mem seen id then
          raise (Invalid_snapshot "checkpoint chunk ids out of range or duplicated");
        Hashtbl.add seen id ())
      cp.cp_done;
    Array.to_list cp.cp_done

let run_governed ?jobs ?(chunk = default_chunk) ?budget ?checkpoint
    ?(checkpoint_every = default_checkpoint_every) ?resume ?(max_retries = default_max_retries)
    ?fault ~trials ~init ~accumulate ~merge rng =
  if trials <= 0 then invalid_arg "Par.run: trials must be positive";
  if chunk <= 0 then invalid_arg "Par.run: chunk must be positive";
  if checkpoint_every <= 0 then
    invalid_arg "Par.run_governed: checkpoint_every must be positive";
  if max_retries < 0 then invalid_arg "Par.run_governed: max_retries must be nonnegative";
  let jobs = resolve_jobs jobs in
  (* one draw from the caller's generator, independent of [jobs], keys the
     whole schedule: chunk [id] always runs on [Rng.substream base id].
     A resumed run re-derives the same [base] from the same seed; the
     checkpoint records it so a mismatched resume is rejected, and the
     caller's generator advances identically either way. *)
  let base = Rng.bits64 rng in
  let n_chunks = (trials + chunk - 1) / chunk in
  let chunk_trials id = min chunk (trials - (id * chunk)) in
  let run_chunk id =
    let r = Rng.substream base id in
    let count = chunk_trials id in
    let acc = ref (init ()) in
    for _ = 1 to count do
      acc := accumulate !acc r
    done;
    !acc
  in
  let resumed =
    match resume with
    | None -> []
    | Some file -> load_checkpoint ~file ~base ~trials ~chunk ~n_chunks
  in
  let chunks_resumed = List.length resumed in
  let pending =
    let done_ids = Hashtbl.create (max 16 chunks_resumed) in
    List.iter (fun (id, _) -> Hashtbl.replace done_ids id ()) resumed;
    Array.of_list
      (List.filter (fun id -> not (Hashtbl.mem done_ids id)) (List.init n_chunks Fun.id))
  in
  (* shared scheduler state. [completed]/[abandoned]/[checkpoint] live under
     [mutex]: the lock's happens-before is what lets the checkpointing (or
     merging) domain safely read accumulators mutated by other domains. *)
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let retries = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let mutex = Mutex.create () in
  let completed = ref resumed in
  let completed_n = ref chunks_resumed in
  let since_ckpt = ref 0 in
  let ckpts = ref 0 in
  let exhausted_cause = ref None in
  let fatal = ref None in
  (* wedged chunks: claimed by a worker that then stopped responding;
     (chunk id, attempts already burned) *)
  let abandoned = ref [] in
  let write_checkpoint_locked () =
    match checkpoint with
    | None -> ()
    | Some file ->
      save_checkpoint ~file ~base ~trials ~chunk !completed;
      incr ckpts;
      since_ckpt := 0
  in
  let record_done id acc =
    Mutex.lock mutex;
    completed := (id, acc) :: !completed;
    incr completed_n;
    incr since_ckpt;
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    if !since_ckpt >= checkpoint_every then write_checkpoint_locked ();
    Mutex.unlock mutex
  in
  (* one chunk with in-worker crash retries; [`Wedge] simulates the worker
     dying mid-chunk (it stops taking work; the chunk is re-run later on a
     surviving domain). Determinism: every attempt replays the same
     substream, so a retried chunk's accumulator is bit-identical to an
     untroubled one. *)
  let rec attempt_chunk id attempt =
    let injected = match fault with None -> None | Some f -> f ~chunk:id ~attempt in
    match
      match injected with
      | Some Crash -> raise (Injected_crash { chunk = id; attempt })
      | Some Wedge -> `Wedge
      | None -> `Acc (run_chunk id)
    with
    | `Wedge ->
      ignore (Atomic.fetch_and_add failures 1);
      `Wedge attempt
    | `Acc acc -> `Done acc
    | exception e ->
      ignore (Atomic.fetch_and_add failures 1);
      if attempt > max_retries then `Failed (e, attempt)
      else begin
        ignore (Atomic.fetch_and_add retries 1);
        attempt_chunk id (attempt + 1)
      end
  in
  let worker _w =
    let continue = ref true in
    while !continue do
      if Atomic.get stop then continue := false
      else begin
        match match budget with None -> None | Some b -> Budget.check b with
        | Some cause ->
          Mutex.lock mutex;
          if !exhausted_cause = None then exhausted_cause := Some cause;
          Mutex.unlock mutex;
          Atomic.set stop true;
          continue := false
        | None ->
          let i = Atomic.fetch_and_add next 1 in
          if i >= Array.length pending then continue := false
          else begin
            let id = pending.(i) in
            match attempt_chunk id 1 with
            | `Done acc -> record_done id acc
            | `Wedge attempt ->
              Mutex.lock mutex;
              abandoned := (id, attempt) :: !abandoned;
              Mutex.unlock mutex;
              continue := false
            | `Failed (e, attempts) ->
              Mutex.lock mutex;
              if !fatal = None then
                fatal :=
                  Some
                    (Retries_exhausted
                       { chunk = id; attempts; last_error = Printexc.to_string e });
              Mutex.unlock mutex;
              Atomic.set stop true;
              continue := false
          end
      end
    done
  in
  let workers = min jobs (max 1 (Array.length pending)) in
  if Array.length pending > 0 then fan_out ~workers worker;
  (match !fatal with Some e -> raise e | None -> ());
  (* Recovery on the calling domain (it survived the join): re-run chunks
     whose worker wedged away, each continuing its attempt count, then drain
     any chunks those lost workers never claimed. The calling domain cannot
     wedge away, so a simulated wedge here burns an attempt like a crash
     does. Determinism: recovered chunks replay the same substreams, so the
     merged result is bit-identical to an untroubled run. *)
  let run_on_caller id burned =
    let rec go attempt =
      match attempt_chunk id attempt with
      | `Done acc -> record_done id acc
      | `Failed (e, attempts) ->
        raise (Retries_exhausted { chunk = id; attempts; last_error = Printexc.to_string e })
      | `Wedge attempts ->
        if attempts > max_retries then
          raise
            (Retries_exhausted { chunk = id; attempts; last_error = "simulated worker wedge" })
        else begin
          ignore (Atomic.fetch_and_add retries 1);
          go (attempts + 1)
        end
    in
    if burned > 0 then ignore (Atomic.fetch_and_add retries 1);
    go (burned + 1)
  in
  let with_budget_check k =
    if !exhausted_cause = None then
      match match budget with None -> None | Some b -> Budget.check b with
      | Some cause -> exhausted_cause := Some cause
      | None -> k ()
  in
  List.iter
    (fun (id, burned) -> with_budget_check (fun () -> run_on_caller id burned))
    (List.sort compare !abandoned);
  let rec drain () =
    with_budget_check (fun () ->
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length pending then begin
          run_on_caller pending.(i) 0;
          drain ()
        end)
  in
  if !abandoned <> [] then drain ();
  (* final checkpoint: flush everything completed, so a later resume picks
     up exactly here (a snapshot of a finished run resumes to a no-op) *)
  (match checkpoint with
   | None -> ()
   | Some _ ->
     Mutex.lock mutex;
     write_checkpoint_locked ();
     Mutex.unlock mutex);
  let done_sorted = List.sort (fun (a, _) (b, _) -> compare a b) !completed in
  let trials_done = List.fold_left (fun acc (id, _) -> acc + chunk_trials id) 0 done_sorted in
  (* merge in chunk-index order — the same left fold as a sequential run,
     so even non-associative merges (float sums) agree bit-for-bit *)
  let value =
    match done_sorted with
    | [] -> init ()
    | (_, first) :: rest -> List.fold_left (fun acc (_, a) -> merge acc a) first rest
  in
  let exhausted =
    match (!exhausted_cause, budget) with
    | Some cause, Some b -> Some (Budget.exhaustion b cause)
    | Some cause, None ->
      (* unreachable: a cause only arises from a budget check *)
      Some { Budget.cause; work_done = !completed_n; elapsed_s = 0.0 }
    | None, _ -> None
  in
  {
    value;
    run_stats =
      {
        chunks_total = n_chunks;
        chunks_done = !completed_n;
        chunks_resumed;
        trials_done;
        retries = Atomic.get retries;
        worker_failures = Atomic.get failures;
        checkpoints_written = !ckpts;
      };
    exhausted;
  }

(* -- streaming engine: per-worker scratch + adaptive stopping ----------- *)

type 'a streamed = {
  value : 'a;
  trials_done : int;
  chunks_done : int;
  target_met : bool;
  exhausted : Budget.exhaustion option;
}

let default_report_every = 16

(* Same schedule as [run] — one base draw, chunk [id] on
   [Rng.substream base id], merge as a left fold in chunk-index order — but
   the trial function is built once per worker ([worker ()] allocates the
   scratch that the per-trial closure reuses), and the fold is evaluated
   incrementally so a stop predicate can end the run at a chunk boundary.

   Stopping determinism: the predicate is evaluated on the merged
   {e schedule-order prefix} after each prefix extension, so the stopping
   chunk is min k such that [stop] holds over chunks [0..k] — a pure
   function of (seed, schedule, predicate). With [jobs > 1] workers may
   complete chunks beyond the stopping point or out of order; chunks past
   the stopping point (or past a hole at budget exhaustion) are discarded,
   never merged, keeping the result and the stopping trial count
   jobs-invariant. *)
let run_streaming ?jobs ?(chunk = default_chunk) ?budget ?stop ?report
    ?(report_every = default_report_every) ~max_trials ~init ~worker ~merge rng =
  if max_trials <= 0 then invalid_arg "Par.run_streaming: max_trials must be positive";
  if chunk <= 0 then invalid_arg "Par.run_streaming: chunk must be positive";
  if report_every <= 0 then invalid_arg "Par.run_streaming: report_every must be positive";
  let jobs = resolve_jobs jobs in
  let base = Rng.bits64 rng in
  let n_chunks = (max_trials + chunk - 1) / chunk in
  let chunk_trials id = min chunk (max_trials - (id * chunk)) in
  let run_chunk accumulate id =
    let r = Rng.substream base id in
    let count = chunk_trials id in
    let acc = ref (init ()) in
    for _ = 1 to count do
      acc := accumulate !acc r
    done;
    !acc
  in
  let finish ~value ~trials ~chunks ~target_met ~cause =
    let exhausted =
      match (cause, budget) with
      | Some c, Some b -> Some (Budget.exhaustion b c)
      | Some c, None ->
        (* unreachable: a cause only arises from a budget check *)
        Some { Budget.cause = c; work_done = chunks; elapsed_s = 0.0 }
      | None, _ -> None
    in
    let value = match value with Some v -> v | None -> init () in
    { value; trials_done = trials; chunks_done = chunks; target_met; exhausted }
  in
  let workers = min jobs n_chunks in
  if workers = 1 then begin
    (* sequential path: the reference semantics the parallel path must match *)
    let accumulate = worker () in
    let value = ref None in
    let trials = ref 0 in
    let chunks = ref 0 in
    let target_met = ref false in
    let cause = ref None in
    let id = ref 0 in
    while !id < n_chunks && (not !target_met) && !cause = None do
      (match match budget with None -> None | Some b -> Budget.check b with
       | Some c -> cause := Some c
       | None ->
         let acc = run_chunk accumulate !id in
         (match budget with Some b -> Budget.spend b 1 | None -> ());
         value := Some (match !value with None -> acc | Some v -> merge v acc);
         trials := !trials + chunk_trials !id;
         incr chunks;
         let v = Option.get !value in
         (match stop with
          | Some f when f ~trials:!trials v -> target_met := true
          | _ -> ());
         (match report with
          | Some f when !chunks mod report_every = 0 && not !target_met -> f ~trials:!trials v
          | _ -> ());
         incr id)
    done;
    finish ~value:!value ~trials:!trials ~chunks:!chunks ~target_met:!target_met ~cause:!cause
  end
  else begin
    (* dynamic chunk claims + in-order prefix merging under a mutex. Every
       slot of [results] is written once; the prefix pointer only advances
       over contiguous completed chunks, so the merged value replays the
       sequential fold exactly. *)
    let results = Array.make n_chunks None in
    let next = Atomic.make 0 in
    let stop_flag = Atomic.make false in
    let mutex = Mutex.create () in
    let prefix = ref 0 in
    let value = ref None in
    let trials = ref 0 in
    let target_met = ref false in
    let cause = ref None in
    let advance_prefix_locked () =
      let continue = ref true in
      while !continue && (not !target_met) && !prefix < n_chunks do
        match results.(!prefix) with
        | None -> continue := false
        | Some acc ->
          value := Some (match !value with None -> acc | Some v -> merge v acc);
          trials := !trials + chunk_trials !prefix;
          incr prefix;
          let v = Option.get !value in
          (match stop with
           | Some f when f ~trials:!trials v ->
             target_met := true;
             Atomic.set stop_flag true
           | _ -> ());
          (match report with
           | Some f when !prefix mod report_every = 0 && not !target_met ->
             f ~trials:!trials v
           | _ -> ())
      done
    in
    let worker_loop _w =
      let accumulate = worker () in
      let continue = ref true in
      while !continue do
        if Atomic.get stop_flag then continue := false
        else begin
          match match budget with None -> None | Some b -> Budget.check b with
          | Some c ->
            Mutex.lock mutex;
            if !cause = None then cause := Some c;
            Mutex.unlock mutex;
            Atomic.set stop_flag true;
            continue := false
          | None ->
            let id = Atomic.fetch_and_add next 1 in
            if id >= n_chunks then continue := false
            else begin
              let acc = run_chunk accumulate id in
              Mutex.lock mutex;
              results.(id) <- Some acc;
              (match budget with Some b -> Budget.spend b 1 | None -> ());
              advance_prefix_locked ();
              Mutex.unlock mutex
            end
        end
      done
    in
    fan_out ~workers worker_loop;
    finish ~value:!value ~trials:!trials ~chunks:!prefix ~target_met:!target_met ~cause:!cause
  end

let count_streaming ?jobs ?chunk ?budget ?target_width ?(z = 1.96) ?report ?report_every
    ~max_trials ~worker rng =
  (match target_width with
   | Some w when not (w > 0.0) ->
     invalid_arg "Par.count_streaming: target_width must be positive"
   | _ -> ());
  let stop =
    Option.map
      (fun w ~trials successes ->
        let ci = Stats.wilson_ci ~successes ~trials ~z in
        ci.Stats.hi -. ci.Stats.lo <= w)
      target_width
  in
  let report = Option.map (fun f ~trials successes -> f ~trials ~successes) report in
  run_streaming ?jobs ?chunk ?budget ?stop ?report ?report_every ~max_trials
    ~init:(fun () -> 0)
    ~worker:(fun () ->
      let f = worker () in
      fun acc r -> if f r then acc + 1 else acc)
    ~merge:( + ) rng

(* -- ungoverned entry points (the hot paths) ---------------------------- *)

let run ?jobs ?(chunk = default_chunk) ~trials ~init ~accumulate ~merge rng =
  if trials <= 0 then invalid_arg "Par.run: trials must be positive";
  if chunk <= 0 then invalid_arg "Par.run: chunk must be positive";
  let jobs = resolve_jobs jobs in
  let base = Rng.bits64 rng in
  let n_chunks = (trials + chunk - 1) / chunk in
  let run_chunk id =
    let r = Rng.substream base id in
    let count = min chunk (trials - (id * chunk)) in
    let acc = ref (init ()) in
    for _ = 1 to count do
      acc := accumulate !acc r
    done;
    !acc
  in
  let workers = min jobs n_chunks in
  if workers = 1 then begin
    (* sequential path: same chunk schedule, no domains spawned *)
    let acc = ref (run_chunk 0) in
    for id = 1 to n_chunks - 1 do
      acc := merge !acc (run_chunk id)
    done;
    !acc
  end
  else begin
    (* static strided assignment: chunk costs are uniform (equal trial
       counts), so striding balances without a work queue; each slot of
       [results] is written by exactly one domain and read only after the
       join barrier *)
    let results = Array.make n_chunks None in
    fan_out ~workers (fun w ->
        let id = ref w in
        while !id < n_chunks do
          results.(!id) <- Some (run_chunk !id);
          id := !id + workers
        done);
    let get i = match results.(i) with Some a -> a | None -> assert false in
    (* merge in chunk-index order — the same left fold as the sequential
       path, so even non-associative merges (float sums) agree bit-for-bit *)
    let acc = ref (get 0) in
    for id = 1 to n_chunks - 1 do
      acc := merge !acc (get id)
    done;
    !acc
  end

let count ?jobs ?chunk ~trials f rng =
  run ?jobs ?chunk ~trials
    ~init:(fun () -> 0)
    ~accumulate:(fun acc r -> if f r then acc + 1 else acc)
    ~merge:( + ) rng

let sum_float ?jobs ?chunk ~trials f rng =
  run ?jobs ?chunk ~trials
    ~init:(fun () -> 0.0)
    ~accumulate:(fun acc r -> acc +. f r)
    ~merge:( +. ) rng

let count_governed ?jobs ?chunk ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries
    ?fault ~trials f rng =
  run_governed ?jobs ?chunk ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
    ~trials
    ~init:(fun () -> 0)
    ~accumulate:(fun acc r -> if f r then acc + 1 else acc)
    ~merge:( + ) rng

let map_array ?jobs f a =
  let jobs = resolve_jobs jobs in
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let workers = min jobs n in
    if workers = 1 then Array.map f a
    else begin
      let out = Array.make n None in
      fan_out ~workers (fun w ->
          let i = ref w in
          while !i < n do
            out.(!i) <- Some (f a.(!i));
            i := !i + workers
          done);
      Array.map (function Some v -> v | None -> assert false) out
    end
  end

let map_list ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
