let default_chunk = 4096

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let resolve_jobs = function None -> default_jobs () | Some j -> max 1 j

(* Run [f w] on [workers] domains with [w = 0 .. workers - 1], worker 0 on
   the calling domain. Joins every spawned domain before re-raising any
   exception, so no domain is ever leaked. *)
let fan_out ~workers f =
  if workers <= 1 then f 0
  else begin
    let spawned = List.init (workers - 1) (fun w -> Domain.spawn (fun () -> f (w + 1))) in
    let here = try Ok (f 0) with e -> Error e in
    let joined = List.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned in
    List.iter (function Error e -> raise e | Ok () -> ()) (here :: joined)
  end

let run ?jobs ?(chunk = default_chunk) ~trials ~init ~accumulate ~merge rng =
  if trials <= 0 then invalid_arg "Par.run: trials must be positive";
  if chunk <= 0 then invalid_arg "Par.run: chunk must be positive";
  let jobs = resolve_jobs jobs in
  (* one draw from the caller's generator, independent of [jobs], keys the
     whole schedule: chunk [id] always runs on [Rng.substream base id] *)
  let base = Rng.bits64 rng in
  let n_chunks = (trials + chunk - 1) / chunk in
  let run_chunk id =
    let r = Rng.substream base id in
    let count = min chunk (trials - (id * chunk)) in
    let acc = ref (init ()) in
    for _ = 1 to count do
      acc := accumulate !acc r
    done;
    !acc
  in
  let workers = min jobs n_chunks in
  if workers = 1 then begin
    (* sequential path: same chunk schedule, no domains spawned *)
    let acc = ref (run_chunk 0) in
    for id = 1 to n_chunks - 1 do
      acc := merge !acc (run_chunk id)
    done;
    !acc
  end
  else begin
    (* static strided assignment: chunk costs are uniform (equal trial
       counts), so striding balances without a work queue; each slot of
       [results] is written by exactly one domain and read only after the
       join barrier *)
    let results = Array.make n_chunks None in
    fan_out ~workers (fun w ->
        let id = ref w in
        while !id < n_chunks do
          results.(!id) <- Some (run_chunk !id);
          id := !id + workers
        done);
    let get i = match results.(i) with Some a -> a | None -> assert false in
    (* merge in chunk-index order — the same left fold as the sequential
       path, so even non-associative merges (float sums) agree bit-for-bit *)
    let acc = ref (get 0) in
    for id = 1 to n_chunks - 1 do
      acc := merge !acc (get id)
    done;
    !acc
  end

let count ?jobs ?chunk ~trials f rng =
  run ?jobs ?chunk ~trials
    ~init:(fun () -> 0)
    ~accumulate:(fun acc r -> if f r then acc + 1 else acc)
    ~merge:( + ) rng

let sum_float ?jobs ?chunk ~trials f rng =
  run ?jobs ?chunk ~trials
    ~init:(fun () -> 0.0)
    ~accumulate:(fun acc r -> acc +. f r)
    ~merge:( +. ) rng

let map_array ?jobs f a =
  let jobs = resolve_jobs jobs in
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let workers = min jobs n in
    if workers = 1 then Array.map f a
    else begin
      let out = Array.make n None in
      fan_out ~workers (fun w ->
          let i = ref w in
          while !i < n do
            out.(!i) <- Some (f a.(!i));
            i := !i + workers
          done);
      Array.map (function Some v -> v | None -> assert false) out
    end
  end

let map_list ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
