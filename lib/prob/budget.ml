type cause = Deadline | Work | Memory

type exhaustion = { cause : cause; work_done : int; elapsed_s : float }

type t = {
  started : float;
  deadline_s : float option;
  max_work : int option;
  max_mem_bytes : int option;
  work : int Atomic.t;
}

let create ?deadline_s ?max_work ?max_mem_bytes () =
  let nonneg name = function
    | Some v when v < 0 -> invalid_arg (Printf.sprintf "Budget.create: %s must be nonnegative" name)
    | _ -> ()
  in
  (match deadline_s with
   | Some d when d < 0.0 -> invalid_arg "Budget.create: deadline_s must be nonnegative"
   | _ -> ());
  nonneg "max_work" max_work;
  nonneg "max_mem_bytes" max_mem_bytes;
  { started = Unix.gettimeofday (); deadline_s; max_work; max_mem_bytes; work = Atomic.make 0 }

let spend t n = ignore (Atomic.fetch_and_add t.work n)

let work_done t = Atomic.get t.work

let elapsed_s t = Unix.gettimeofday () -. t.started

let word_bytes = Sys.word_size / 8

(* major-heap size in bytes; quick_stat walks nothing, so polling it per
   work unit is cheap *)
let heap_bytes () = (Gc.quick_stat ()).Gc.heap_words * word_bytes

let check t =
  match t.max_work with
  | Some w when Atomic.get t.work >= w -> Some Work
  | _ -> (
    match t.deadline_s with
    | Some d when Unix.gettimeofday () -. t.started >= d -> Some Deadline
    | _ -> (
      match t.max_mem_bytes with
      | Some m when heap_bytes () >= m -> Some Memory
      | _ -> None))

let exhaustion t cause = { cause; work_done = work_done t; elapsed_s = elapsed_s t }

let cause_to_string = function
  | Deadline -> "deadline"
  | Work -> "work cap"
  | Memory -> "memory watermark"

let describe e =
  Printf.sprintf "%s after %.2fs (%d work unit%s done)" (cause_to_string e.cause) e.elapsed_s
    e.work_done
    (if e.work_done = 1 then "" else "s")
